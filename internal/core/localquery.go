// Package core implements the paper's main contribution (Theorem 2.3 /
// Theorem 5.1): after a pseudo-linear preprocessing of a colored graph G
// and a k-ary query, upon input of any tuple ā the lexicographically
// smallest solution ≥ ā is computed in (pseudo-)constant time. Testing
// (Corollary 2.4) and constant-delay enumeration in lexicographic order
// (Corollary 2.5) are derived exactly as in the paper.
//
// Queries are consumed in the decomposed shape that the Rank-Preserving
// Normal Form Theorem (Theorem 5.4) produces: a disjunction over
// r-distance types τ of clauses, each clause attaching to every connected
// component I of τ a local formula ψ_I evaluated in the neighborhood of
// x̄_I (see LocalQuery). Compile converts a practical FO⁺ fragment into
// this shape; DESIGN.md §3 documents the substitution.
package core

import (
	"fmt"
	"sort"

	"repro/internal/fo"
	"repro/internal/graph"
)

// PosVar returns the canonical variable name for tuple position p (0-based):
// x0, x1, … Local formulas of a LocalQuery must use these names.
func PosVar(p int) fo.Var { return fo.Var(fmt.Sprintf("x%d", p)) }

// ComponentFormula is the ψ_I of one clause: a formula over the positions
// of one connected component of the clause's distance type, interpreted
// *locally* — quantifiers and atoms range over the induced substructure
// G[N_ρ(ā_I)], where ρ is the query's LocalRadius.
type ComponentFormula struct {
	// Positions is the component I, sorted ascending.
	Positions []int
	// Psi is the formula; its free variables must be {PosVar(p) : p ∈ Positions}.
	Psi fo.Formula
}

// Clause is one (τ, i) pair of Theorem 5.4: a tuple ā matches the clause
// iff its R-distance type equals Type exactly and every component formula
// holds locally.
type Clause struct {
	Type   *fo.DistType
	Locals []ComponentFormula // one per connected component of Type
}

// Guard is an optional sentence (no free variables) attached to a clause —
// the analogue of the Boolean combinations ξ^i_τ of independence sentences
// in Theorem 5.4. It is evaluated once on the whole graph during
// preprocessing; clauses whose guard fails are dropped.
type Guard struct {
	Sentence fo.Formula
	Negated  bool
}

// LocalQuery is a k-ary query in the paper's decomposed normal form.
type LocalQuery struct {
	// K is the arity.
	K int
	// R is the distance-type threshold r: Type edges mean dist ≤ R, and
	// positions in different components are at distance > R.
	R int
	// LocalRadius ρ is the locality radius of the component formulas:
	// ψ_I is evaluated in G[N_ρ(ā_I)]. ρ ≥ R is typical.
	LocalRadius int
	// Clauses are the disjuncts; a tuple is a solution iff it matches at
	// least one clause. Clauses with identical Type are allowed (their
	// results are unioned).
	Clauses []Clause
	// Guards, if non-nil, is indexed parallel to Clauses.
	Guards []*Guard
	// Guarded declares that every quantifier of every component formula is
	// witness-guarded within LocalRadius of the free variables (certified
	// by Compile's reach analysis). The engine may then evaluate component
	// formulas on any induced superset of the ρ-ball — enabling shared
	// per-anchor evaluation — because all three domains (global graph,
	// exact ball, superset) give identical answers. Hand-built queries
	// default to false and get the exact-ball semantics of EvalReference.
	Guarded bool
}

// Validate checks structural well-formedness: clause types have arity K,
// components partition the positions, and each ψ_I uses exactly the
// component's position variables.
func (q *LocalQuery) Validate() error {
	if q.K < 1 {
		return fmt.Errorf("core: arity %d < 1", q.K)
	}
	if q.R < 1 {
		return fmt.Errorf("core: distance threshold R=%d < 1", q.R)
	}
	if q.LocalRadius < 0 {
		return fmt.Errorf("core: negative LocalRadius")
	}
	if q.Guards != nil && len(q.Guards) != len(q.Clauses) {
		return fmt.Errorf("core: %d guards for %d clauses", len(q.Guards), len(q.Clauses))
	}
	for ci, cl := range q.Clauses {
		if cl.Type == nil || cl.Type.K != q.K {
			return fmt.Errorf("core: clause %d: distance type arity mismatch", ci)
		}
		comps := cl.Type.Components()
		if len(comps) != len(cl.Locals) {
			return fmt.Errorf("core: clause %d: %d components but %d local formulas",
				ci, len(comps), len(cl.Locals))
		}
		for li, lf := range cl.Locals {
			if !equalIntSlices(comps[li], lf.Positions) {
				return fmt.Errorf("core: clause %d local %d: positions %v do not match component %v",
					ci, li, lf.Positions, comps[li])
			}
			want := map[fo.Var]bool{}
			for _, p := range lf.Positions {
				want[PosVar(p)] = true
			}
			for _, v := range fo.FreeVars(lf.Psi) {
				if !want[v] {
					return fmt.Errorf("core: clause %d local %d: unexpected free variable %s", ci, li, v)
				}
			}
		}
	}
	return nil
}

// MakeClause builds a clause for the given distance type, deriving the
// component partition from the type and pairing each component with the
// formula from psis whose free variables live in it. Components without a
// formula get ⊤.
func MakeClause(t *fo.DistType, psis ...fo.Formula) (Clause, error) {
	comps := t.Components()
	cl := Clause{Type: t, Locals: make([]ComponentFormula, len(comps))}
	for i, comp := range comps {
		cl.Locals[i] = ComponentFormula{Positions: comp, Psi: fo.Truth{Value: true}}
	}
	posToComp := map[int]int{}
	for i, comp := range comps {
		for _, p := range comp {
			posToComp[p] = i
		}
	}
	for _, psi := range psis {
		fv := fo.FreeVars(psi)
		if len(fv) == 0 {
			return Clause{}, fmt.Errorf("core: sentence %s cannot be a component formula; use a Guard", psi)
		}
		comp := -1
		for _, v := range fv {
			var p int
			if _, err := fmt.Sscanf(string(v), "x%d", &p); err != nil {
				return Clause{}, fmt.Errorf("core: variable %s is not a position variable", v)
			}
			ci, ok := posToComp[p]
			if !ok {
				return Clause{}, fmt.Errorf("core: variable %s out of range", v)
			}
			if comp == -1 {
				comp = ci
			} else if comp != ci {
				return Clause{}, fmt.Errorf("core: formula %s spans distance-type components", psi)
			}
		}
		cl.Locals[comp].Psi = fo.AndOf(cl.Locals[comp].Psi, psi)
	}
	return cl, nil
}

// EvalReference is the slow, obviously correct semantics of a LocalQuery,
// used as the oracle in tests and by the naive baselines: the distance type
// is computed by BFS and every ψ_I is evaluated in the induced ball
// G[N_ρ(ā_I)].
func EvalReference(g *graph.Graph, q *LocalQuery, a []graph.V) bool {
	if len(a) != q.K {
		panic(fmt.Sprintf("core: tuple arity %d, want %d", len(a), q.K))
	}
	bfs := graph.NewBFS(g)
	tester := fo.NewBFSDistTester(g)
	typ := fo.TypeOf(tester, a, q.R)
	for ci, cl := range q.Clauses {
		if !typ.Equal(cl.Type) {
			continue
		}
		if q.Guards != nil && q.Guards[ci] != nil {
			gd := q.Guards[ci]
			holds := fo.NewEvaluator(g).Eval(gd.Sentence, fo.Env{})
			if holds == gd.Negated {
				continue
			}
		}
		ok := true
		for _, lf := range cl.Locals {
			if !evalLocalReference(g, bfs, q.LocalRadius, lf, a) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func evalLocalReference(g *graph.Graph, bfs *graph.BFS, rho int, lf ComponentFormula, a []graph.V) bool {
	srcs := make([]graph.V, len(lf.Positions))
	for i, p := range lf.Positions {
		srcs[i] = a[p]
	}
	ball := bfs.BallMulti(srcs, rho)
	vs := make([]graph.V, len(ball))
	for i, v := range ball {
		vs[i] = int(v)
	}
	sub := graph.Induce(g, vs)
	ev := fo.NewEvaluator(sub.G)
	env := fo.Env{}
	for i, p := range lf.Positions {
		env[PosVar(p)] = sub.Local(srcs[i])
	}
	return ev.Eval(lf.Psi, env)
}

func equalIntSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SortPositions is a helper for constructing ComponentFormulas.
func SortPositions(ps []int) []int {
	out := append([]int(nil), ps...)
	sort.Ints(out)
	return out
}
