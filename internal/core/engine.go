package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cover"
	"repro/internal/dist"
	"repro/internal/fo"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/skip"
)

// Options tunes engine preprocessing.
type Options struct {
	// Dist forwards to the distance index of Proposition 4.2.
	Dist dist.Options
	// Parallelism bounds the preprocessing worker count. 0 selects
	// runtime.GOMAXPROCS(0); 1 reproduces the sequential build bit for
	// bit. Any value yields an identical engine — parallelism changes
	// wall time, never the structure or the answers.
	Parallelism int
	// Ctx, when non-nil, bounds the preprocessing: Preprocess checks it
	// between phases (dist → cover → kernel → per-clause starter/skip) and
	// returns the context error once it is canceled or past its deadline.
	// The answering phase is unaffected — checkpoints exist only where the
	// pseudo-linear build spends its time. Nil means no deadline.
	Ctx context.Context
	// Obs, when non-nil, turns on full instrumentation: the preprocessing
	// phases are traced as nested spans (preprocess.dist → .cover →
	// .kernel → .starter → .skip), the answering counters are exported as
	// engine.* counters, per-call latency histograms are recorded for
	// NextGeq/Test/NextLast, and Enumerate records the per-answer delay
	// distribution of Corollary 2.5 into engine.delay_ns. The registry is
	// also threaded into the cover, distance-index, and worker-pool
	// builds. Nil (the default) keeps the answering hot path free of any
	// timing work — each instrument sits behind a single nil check.
	Obs *obs.Registry
}

// Stats reports preprocessing facts and running counters of the answering
// phase.
type Stats struct {
	CoverRadius   int
	CoverBags     int
	CoverDegree   int
	StarterSizes  []int // per (clause, component) starter-list size
	SkipPointers  int   // total materialized skip pointers
	Candidates    int   // candidates examined by NextGeq calls
	DeadEnds      int   // candidates rejected after deeper levels failed
	LocalEvals    int   // bag-local formula evaluations (memo misses)
	LocalEvalHits int   // memo hits

	Workers     int           // preprocessing parallelism used
	DistWall    time.Duration // wall time of the distance-index build
	CoverWall   time.Duration // wall time of the cover computation
	KernelWall  time.Duration // wall time of kernel extraction
	StarterWall time.Duration // wall time of starter-list computation
	SkipWall    time.Duration // wall time of skip-pointer construction

	Mutations   int           // ApplyEdits generations since the from-scratch build
	MutAffected int           // starter slots recomputed by the last ApplyEdits
	MutRebuilds int           // ApplyEdits calls that fell back to a full Preprocess
	MutWall     time.Duration // wall time of the last ApplyEdits
}

// counters holds the answering-phase statistics as registry-compatible
// atomic instruments, so concurrent queries can bump them without a lock;
// Stats() folds them into the snapshot it returns, and Preprocess
// registers them in Options.Obs (when provided) so live scrapes see the
// same numbers with no double counting.
type counters struct {
	candidates    obs.Counter
	deadEnds      obs.Counter
	localEvals    obs.Counter
	localEvalHits obs.Counter
}

// instruments are the optional answering-phase latency histograms. All
// fields are nil unless Options.Obs was provided — the nil check is the
// disabled fast path.
type instruments struct {
	nextGeq  *obs.Histogram // NextGeq call latency
	nextLast *obs.Histogram // NextLast call latency
	test     *obs.Histogram // Test call latency
	delay    *obs.Histogram // per-answer delay inside Enumerate (Cor. 2.5)
}

// Engine is the preprocessed structure of Theorem 2.3 for one graph and one
// LocalQuery. Preprocess must complete before use; afterwards the
// answering methods (NextGeq, NextGt, NextLast, Test, Enumerate, Count,
// FastCount, Stats) are safe for concurrent use — query-time scratch is
// pooled per goroutine and the lazy caches are concurrent maps.
type Engine struct {
	g   *graph.Graph
	q   *LocalQuery
	k   int
	r   int // distance-type threshold R
	rho int // local radius ρ

	dix     *dist.Index
	evPool  sync.Pool // *fo.Evaluator with dist atoms served by dix
	envPool sync.Pool // fo.Env scratch for guarded local evaluations
	cov     *cover.Cover
	bagSubs []*graph.Sub   // only materialized for non-guarded queries
	bagBFS  []*scratchPool // per-bag BFS scratch
	gbfs    *scratchPool   // global scratch (guarded paths)

	clauses    []*clauseRT
	liveIdx    []int    // indices into q.Clauses of guard-surviving clauses
	ballCache  sync.Map // graph.V -> []graph.V, radius R(k−1)
	ballRCache sync.Map // graph.V -> []graph.V, radius R
	stats      Stats
	ctr        counters
	instr      instruments
	obsReg     *obs.Registry // nil when built without Options.Obs
}

// scratchPool hands out per-goroutine BFS scratch bound to one graph.
type scratchPool struct{ p sync.Pool }

func newScratchPool(g *graph.Graph) *scratchPool {
	sp := &scratchPool{}
	sp.p.New = func() any { return graph.NewBFS(g) }
	return sp
}

func (sp *scratchPool) get() *graph.BFS  { return sp.p.Get().(*graph.BFS) }
func (sp *scratchPool) put(b *graph.BFS) { sp.p.Put(b) }

// clauseRT is the runtime form of one clause.
type clauseRT struct {
	clause  *Clause
	comps   []*compRT
	compOf  []int // position -> index into comps
	firstOf []int // position -> earliest position of its component
}

// compRT is the runtime form of one component formula.
type compRT struct {
	positions []int
	typ       *fo.DistType // the owning clause's distance type
	psi       fo.Formula
	vars      []fo.Var // PosVar of each position, aligned with positions
	last      int      // max position (where ψ gets tested)

	// Starter machinery for the component's first position (Case I of the
	// paper, generalized to every level that opens a new component).
	starter      []graph.V // sorted vertices that can open the component
	inStart      []bool    // membership, indexed by vertex
	starterReady bool      // inStart complete: O(1) unary evaluation
	skip         *skip.Pointers
	byKernel     [][]graph.V // per bag: starter ∩ K_R(bag), sorted

	memo sync.Map // tupleKey -> bool, bag-local evaluation memo
}

// Preprocess builds the Theorem 2.3 index: distance index, (kR+ρ, ·)
// neighborhood cover with R-kernels, per-clause starter lists, and skip
// pointers. Its cost is pseudo-linear on nowhere dense inputs. With
// Options.Parallelism > 1 the phases run on a worker pool; the resulting
// engine is identical to the sequential build.
func Preprocess(g *graph.Graph, q *LocalQuery, opt Options) (*Engine, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if q.K > skip.MaxSetSize+1 {
		return nil, fmt.Errorf("core: arity %d exceeds supported maximum %d", q.K, skip.MaxSetSize+1)
	}
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	// checkpoint aborts the build between phases once ctx is done. The
	// phases themselves run to completion; on nowhere dense inputs each is
	// pseudo-linear, so cancellation latency is one phase, not one build.
	checkpoint := func() error {
		select {
		case <-ctx.Done():
			return fmt.Errorf("core: preprocessing canceled: %w", context.Cause(ctx))
		default:
			return nil
		}
	}
	if err := checkpoint(); err != nil {
		return nil, err
	}
	e := &Engine{g: g, q: q, k: q.K, r: q.R, rho: q.LocalRadius, obsReg: opt.Obs}
	workers := par.Resolve(opt.Parallelism)
	pool := par.NewPool(workers).WithMetrics(par.NewMetrics(opt.Obs, "engine.pool"))
	e.stats.Workers = workers
	e.gbfs = newScratchPool(g)
	// StartSpan instead of Span: when the context carries a request trace
	// (serve's singleflight build), the whole phase tree below lands in
	// that trace under its existing span names.
	root := opt.Obs.StartSpan(ctx, "preprocess")

	// Distance index (Proposition 4.2) for the type tests dist ≤ R and —
	// on guarded queries — for the distance atoms inside the component
	// formulas, whose constants may exceed R.
	distR := e.r
	for ci := range q.Clauses {
		for li := range q.Clauses[ci].Locals {
			if d := fo.MaxDistConstant(q.Clauses[ci].Locals[li].Psi); d > distR {
				distR = d
			}
		}
	}
	distOpt := opt.Dist
	if distOpt.Workers == 0 {
		distOpt.Workers = workers
	}
	if distOpt.Obs == nil {
		distOpt.Obs = opt.Obs
	}
	sp := root.Child("dist")
	e.dix = dist.New(g, distR, distOpt)
	e.stats.DistWall = sp.End()
	if err := checkpoint(); err != nil {
		return nil, err
	}
	e.evPool.New = func() any {
		ev := fo.NewEvaluator(g)
		ev.UseDistTester(e.dix)
		return ev
	}
	e.envPool.New = func() any { return fo.Env{} }

	// Cover radius. The kernels make "outside every kernel ⇒ far from
	// every previous element" sound, which needs bags ⊇ N_{2R}(center of
	// coverage). Guarded queries evaluate their local formulas on global
	// balls, so 2R suffices; hand-built queries additionally need the bag
	// to contain N_ρ(ā_I) around the component's first element (ā_I spans
	// ≤ R(k−1) from it), because their semantics is tied to G[N_ρ(ā_I)]
	// computed inside the bag.
	coverR := 2 * e.r
	if !q.Guarded {
		if alt := e.r*e.k + e.rho; alt > coverR {
			coverR = alt
		}
	}
	sp = root.Child("cover")
	e.cov = cover.ComputeWith(g, coverR, cover.Options{Workers: workers, Obs: opt.Obs})
	e.stats.CoverWall = sp.End()
	if err := checkpoint(); err != nil {
		return nil, err
	}
	sp = root.Child("kernel")
	e.cov.ComputeKernels(e.r)
	e.stats.KernelWall = sp.End()
	if err := checkpoint(); err != nil {
		return nil, err
	}
	e.stats.CoverRadius = coverR
	e.stats.CoverBags = e.cov.NumBags()
	e.stats.CoverDegree = e.cov.Degree()

	if !q.Guarded {
		e.bagSubs = par.Map(pool, e.cov.NumBags(), func(i int) *graph.Sub {
			return graph.Induce(g, e.cov.Bag(i))
		})
		e.bagBFS = make([]*scratchPool, len(e.bagSubs))
		for i := range e.bagBFS {
			e.bagBFS[i] = newScratchPool(e.bagSubs[i].G)
		}
	}

	// Evaluate guards once (the ξ^i_τ sentences of Theorem 5.4) and drop
	// failing clauses. The surviving indices are recorded so a snapshot can
	// restore the exact clause set without re-evaluating the guards.
	var live []Clause
	for ci := range q.Clauses {
		if q.Guards != nil && q.Guards[ci] != nil {
			gd := q.Guards[ci]
			holds := fo.NewEvaluator(g).Eval(gd.Sentence, fo.Env{})
			if holds == gd.Negated {
				continue
			}
		}
		e.liveIdx = append(e.liveIdx, ci)
		live = append(live, q.Clauses[ci])
	}

	for ci := range live {
		if err := checkpoint(); err != nil {
			return nil, err
		}
		rt, err := e.buildClause(&live[ci], pool, root, checkpoint)
		if err != nil {
			return nil, err
		}
		e.clauses = append(e.clauses, rt)
	}
	root.End()
	e.exportInstruments(opt.Obs)
	return e, nil
}

// exportInstruments registers the engine's always-on counters in reg,
// publishes structural gauges, and creates the answering-phase latency
// histograms. A nil registry leaves the engine uninstrumented (every
// histogram pointer stays nil, so the hot path pays one branch per call).
func (e *Engine) exportInstruments(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.RegisterCounter("engine.candidates", &e.ctr.candidates)
	reg.RegisterCounter("engine.dead_ends", &e.ctr.deadEnds)
	reg.RegisterCounter("engine.local_evals", &e.ctr.localEvals)
	reg.RegisterCounter("engine.local_eval_hits", &e.ctr.localEvalHits)
	reg.Gauge("engine.workers").Set(int64(e.stats.Workers))
	reg.Gauge("engine.cover_bags").Set(int64(e.stats.CoverBags))
	reg.Gauge("engine.cover_degree").Set(int64(e.stats.CoverDegree))
	reg.Gauge("engine.cover_radius").Set(int64(e.stats.CoverRadius))
	reg.Gauge("engine.skip_pointers").Set(int64(e.stats.SkipPointers))
	reg.Gauge("engine.clauses").Set(int64(len(e.clauses)))
	e.instr.nextGeq = reg.Histogram("engine.next_geq_ns")
	e.instr.nextLast = reg.Histogram("engine.next_last_ns")
	e.instr.test = reg.Histogram("engine.test_ns")
	e.instr.delay = reg.Histogram("engine.delay_ns")
}

// Obs returns the registry the engine records into (nil when built
// without Options.Obs).
func (e *Engine) Obs() *obs.Registry { return e.obsReg }

func (e *Engine) buildClause(cl *Clause, pool *par.Pool, trace *obs.Span, checkpoint func() error) (*clauseRT, error) {
	rt := &clauseRT{
		clause:  cl,
		compOf:  make([]int, e.k),
		firstOf: make([]int, e.k),
	}
	for li := range cl.Locals {
		lf := &cl.Locals[li]
		c := &compRT{
			positions: lf.Positions,
			typ:       cl.Type,
			psi:       lf.Psi,
			last:      lf.Positions[len(lf.Positions)-1],
		}
		for _, p := range lf.Positions {
			c.vars = append(c.vars, PosVar(p))
			rt.compOf[p] = li
			rt.firstOf[p] = lf.Positions[0]
		}
		sp := trace.Child("starter")
		e.computeStarter(c, pool)
		e.stats.StarterWall += sp.End()
		e.stats.StarterSizes = append(e.stats.StarterSizes, len(c.starter))
		if err := checkpoint(); err != nil {
			return nil, err
		}
		if e.k >= 2 {
			sp = trace.Child("skip")
			c.skip = skip.New(e.g, e.cov, e.k-1, c.starter)
			e.stats.SkipWall += sp.End()
			e.stats.SkipPointers += c.skip.Size()
		}
		e.buildKernelLists(c, pool)
		rt.comps = append(rt.comps, c)
	}
	return rt, nil
}

// computeStarter fills c.starter: the vertices v that can take the
// component's first position, i.e. for which the component has a local
// solution with first coordinate v (Step 12 of the paper for singleton
// components; the multi-position generalization searches the ball around v
// for a completion respecting the component's internal distance pattern).
//
// The per-vertex tests are independent — they share only the concurrent
// caches and pooled scratch — so they fan out across the pool; each vertex
// writes its own inStart slot and the sorted starter list is assembled
// from the bitmap afterwards, making the result worker-count-independent.
func (e *Engine) computeStarter(c *compRT, pool *par.Pool) {
	c.inStart = make([]bool, e.g.N())
	pool.ForEach(e.g.N(), func(v int) {
		if len(c.positions) == 1 {
			c.inStart[v] = e.localEval(c, []graph.V{v})
		} else {
			c.inStart[v] = e.completesComponent(c, []graph.V{v})
		}
	})
	for v, in := range c.inStart {
		if in {
			c.starter = append(c.starter, v)
		}
	}
	if len(c.positions) == 1 {
		// The starter list IS the unary solution list; later localEval
		// calls answer from the bitmap in O(1).
		c.starterReady = true
	}
}

// completesComponent reports whether the partial component assignment
// (values for c.positions[:len(vals)]) extends to a full local solution of
// the component, searching candidates in the ball around the first value.
func (e *Engine) completesComponent(c *compRT, vals []graph.V) bool {
	if len(vals) == len(c.positions) {
		return e.checkComponentType(c, vals) && e.localEval(c, vals)
	}
	// Candidates for the next position: within R·(|I|−1) of the first.
	for _, w := range e.cachedBall(vals[0]) {
		if e.partialTypeOK(c, vals, w) && e.completesComponent(c, append(vals, w)) {
			return true
		}
	}
	return false
}

// componentBall returns the sorted ball of radius R·(k−1) around v, in
// original vertex ids. Every component completion lives inside it. Guarded
// queries compute it on the global graph; hand-built queries inside the
// bag 𝒳(v) (the two agree on the ball itself, since the bag contains it).
func (e *Engine) componentBall(v graph.V) []graph.V {
	radius := e.r * (e.k - 1)
	if e.q.Guarded {
		bfs := e.gbfs.get()
		ball := bfs.Ball(v, radius)
		out := make([]graph.V, len(ball))
		for i, w := range ball {
			out[i] = int(w)
		}
		e.gbfs.put(bfs)
		sort.Ints(out)
		return out
	}
	bag := e.cov.Assign(v)
	sub := e.bagSubs[bag]
	bfs := e.bagBFS[bag].get()
	ball := bfs.Ball(sub.Local(v), radius)
	out := make([]graph.V, len(ball))
	for i, w := range ball {
		out[i] = sub.Orig[int(w)]
	}
	e.bagBFS[bag].put(bfs)
	sort.Ints(out)
	return out
}

// partialTypeOK checks the distance-type edges between the prospective
// value w (for position c.positions[len(vals)]) and the already placed
// component values.
func (e *Engine) partialTypeOK(c *compRT, vals []graph.V, w graph.V) bool {
	pj := c.positions[len(vals)]
	for i, v := range vals {
		pi := c.positions[i]
		if e.dix.Within(v, w, e.r) != c.typeClose(pi, pj) {
			return false
		}
	}
	return true
}

func (c *compRT) typeClose(pi, pj int) bool { return c.typ.Close(pi, pj) }

// checkComponentType re-verifies all internal type edges of the component.
func (e *Engine) checkComponentType(c *compRT, vals []graph.V) bool {
	for i := range vals {
		for j := i + 1; j < len(vals); j++ {
			if e.dix.Within(vals[i], vals[j], e.r) != c.typeClose(c.positions[i], c.positions[j]) {
				return false
			}
		}
	}
	return true
}

// buildKernelLists fills c.byKernel[bag] = starter ∩ K_R(bag). Bags are
// independent and each task writes only its own list.
func (e *Engine) buildKernelLists(c *compRT, pool *par.Pool) {
	// Two counting passes into one flat backing array: per-bag append
	// allocations made this a hotspot on the snapshot-restore path.
	nb := e.cov.NumBags()
	c.byKernel = make([][]graph.V, nb)
	cnt := make([]int32, nb+1)
	pool.ForEach(nb, func(i int) {
		m := int32(0)
		for _, v := range e.cov.Kernel(i) {
			if c.inStart[v] {
				m++
			}
		}
		cnt[i+1] = m
	})
	for i := 0; i < nb; i++ {
		cnt[i+1] += cnt[i]
	}
	flat := make([]graph.V, cnt[nb])
	pool.ForEach(nb, func(i int) {
		row := flat[cnt[i]:cnt[i]:cnt[i+1]]
		for _, v := range e.cov.Kernel(i) {
			if c.inStart[v] {
				row = append(row, v)
			}
		}
		c.byKernel[i] = row
	})
}

// localEval evaluates ψ_I(ā_I) locally, with memoization. vals is aligned
// with c.positions. For guarded queries (compiler-certified witness
// bounds) the formula is evaluated on the global graph with quantifiers
// restricted to the ρ-ball and distance atoms served by the index — no
// subgraph construction at all. Hand-built queries get the literal
// G[N_ρ(ā_I)] semantics of EvalReference.
//
// Safe for concurrent use: the memo is a concurrent map (duplicate
// concurrent evaluations compute the same value, so racing stores are
// benign) and evaluator/BFS scratch comes from per-goroutine pools.
func (e *Engine) localEval(c *compRT, vals []graph.V) bool {
	if c.starterReady && len(vals) == 1 {
		return c.inStart[vals[0]]
	}
	//fod:coldpath memo key of the general-component path — singleton components (the pinned 0-alloc guards) take the starterReady fast path above
	key := tupleKey(vals)
	if r, ok := c.memo.Load(key); ok {
		e.ctr.localEvalHits.Add(1)
		return r.(bool)
	}
	e.ctr.localEvals.Add(1)
	var res bool
	if e.q.Guarded {
		// Global semantics: ball on the global graph, quantifiers over the
		// ball, distance atoms via the index. No subgraph construction.
		bfs := e.gbfs.get()
		ball := bfs.BallMulti(vals, e.rho)
		domain := make([]graph.V, len(ball))
		for i, w := range ball {
			domain[i] = int(w)
		}
		e.gbfs.put(bfs)
		env := e.envPool.Get().(fo.Env)
		clear(env)
		for i, v := range vals {
			env[c.vars[i]] = v
		}
		ev := e.evPool.Get().(*fo.Evaluator)
		res = ev.EvalOver(c.psi, env, domain)
		e.evPool.Put(ev)
		e.envPool.Put(env)
	} else {
		// Hand-built (uncertified) queries only: the pinned 0-alloc delay
		// guards all run compiler-certified queries, and the memo above
		// makes this a once-per-tuple cost, not a per-answer one.
		//fod:coldpath memoized fallback for uncertified queries
		res = e.exactBallEval(c, vals)
	}
	c.memo.Store(key, res)
	return res
}

// exactBallEval is the literal G[N_ρ(ā_I)] semantics for hand-built
// (uncertified) queries, evaluated inside the bag of the first element.
func (e *Engine) exactBallEval(c *compRT, vals []graph.V) bool {
	bag := e.cov.Assign(vals[0])
	sub := e.bagSubs[bag]
	locals := make([]graph.V, len(vals))
	for i, v := range vals {
		lv := sub.Local(v)
		if lv < 0 {
			// The component values must all lie inside the bag of the
			// first element (they are within R(k−1) ≤ coverR of it); a
			// miss means the tuple violates the component's distance
			// pattern, so it is no solution.
			return false
		}
		locals[i] = lv
	}
	bfs := e.bagBFS[bag].get()
	ball := bfs.BallMulti(locals, e.rho)
	vs := make([]graph.V, len(ball))
	for i, w := range ball {
		vs[i] = int(w)
	}
	e.bagBFS[bag].put(bfs)
	ballSub := graph.Induce(sub.G, vs)
	ev := fo.NewCachedEvaluator(ballSub.G)
	env := fo.Env{}
	for i := range vals {
		env[c.vars[i]] = ballSub.Local(locals[i])
	}
	return ev.Eval(c.psi, env)
}

func tupleKey(vals []graph.V) string {
	b := make([]byte, 0, len(vals)*5)
	for _, v := range vals {
		for v >= 0x80 {
			b = append(b, byte(v)|0x80)
			v >>= 7
		}
		b = append(b, byte(v))
	}
	return string(b)
}

// Stats returns a snapshot of the current statistics. The snapshot is
// fully isolated: slice-typed fields are deep-copied, so neither engine
// internals nor other snapshots can observe mutations of the returned
// value (and vice versa).
func (e *Engine) Stats() Stats {
	s := e.stats
	s.StarterSizes = append([]int(nil), e.stats.StarterSizes...)
	s.Candidates = int(e.ctr.candidates.Load())
	s.DeadEnds = int(e.ctr.deadEnds.Load())
	s.LocalEvals = int(e.ctr.localEvals.Load())
	s.LocalEvalHits = int(e.ctr.localEvalHits.Load())
	return s
}

// Graph returns the underlying graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Query returns the query the engine was built for.
func (e *Engine) Query() *LocalQuery { return e.q }
