package lowdeg_test

import (
	"testing"

	"repro/internal/conform"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lowdeg"
)

// fuzzClasses are bounded-degree generator families — the regime the
// lowdeg engine targets (Grid caps at degree 4, KingGrid at 8).
var fuzzClasses = []gen.Class{
	gen.BoundedDegree, gen.Path, gen.Cycle, gen.Caterpillar, gen.Grid, gen.RandomTree,
}

// fuzzQueries is a fixed query menu spanning the answering shapes: unary,
// binary close, binary far, mixed disjunction, ternary far, ternary
// connected.
var fuzzQueries = []struct {
	query string
	vars  []string
}{
	{"C1(x)", []string{"x"}},
	{"dist(x,y) <= 2 & C0(x)", []string{"x", "y"}},
	{"dist(x,y) > 2 & C0(y)", []string{"x", "y"}},
	{"E(x,y) & C0(x)", []string{"x", "y"}},
	{"dist(x,y) <= 1 | dist(x,y) > 2 & C0(x)", []string{"x", "y"}},
	{"dist(x,y) > 1 & dist(y,z) > 1 & dist(x,z) > 1 & C0(x)", []string{"x", "y", "z"}},
	{"E(x,y) & E(y,z) & C1(z)", []string{"x", "y", "z"}},
}

// FuzzEngineEquivalence generates random bounded-degree graphs and checks
// that the core engine, the lowdeg engine and the naive oracle answer
// identically on every face of the engine contract. Run continuously in
// tier 2 of scripts/verify.sh (30s budget).
func FuzzEngineEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(2), uint8(12))
	f.Add(int64(7), uint8(4), uint8(5), uint8(40))
	f.Add(int64(42), uint8(2), uint8(0), uint8(3))
	f.Add(int64(9), uint8(1), uint8(6), uint8(25))
	f.Fuzz(func(t *testing.T, seed int64, classIdx, queryIdx, n uint8) {
		class := fuzzClasses[int(classIdx)%len(fuzzClasses)]
		qc := fuzzQueries[int(queryIdx)%len(fuzzQueries)]
		nv := 8 + int(n)%48
		g := gen.Generate(class, nv, gen.Options{Seed: seed, Colors: 2})
		q := compile(t, qc.query, qc.vars...)
		ce, err := core.Preprocess(g, q, core.Options{Parallelism: 1})
		if err != nil {
			t.Fatalf("core preprocess: %v", err)
		}
		le, err := lowdeg.Preprocess(g, q, lowdeg.Options{Parallelism: 1})
		if err != nil {
			t.Fatalf("lowdeg preprocess: %v", err)
		}
		want := conform.NewNaive(g, q).Solutions()
		for _, sys := range []conform.System{
			{Name: "core", Engine: ce, K: q.K, N: g.N(),
				NewCursor: func(a []graph.V) conform.Cursor { return ce.IteratorFrom(a) }},
			{Name: "lowdeg", Engine: le, K: q.K, N: g.N(),
				NewCursor: func(a []graph.V) conform.Cursor { return le.IteratorFrom(a) }},
		} {
			if err := conform.CheckAll(sys, want); err != nil {
				t.Errorf("seed=%d class=%s n=%d query=%q: %v", seed, class, nv, qc.query, err)
			}
		}
	})
}
