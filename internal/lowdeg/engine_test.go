package lowdeg_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/conform"
	"repro/internal/core"
	"repro/internal/fo"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lowdeg"
	"repro/internal/obs"
)

func compile(t testing.TB, query string, vars ...string) *core.LocalQuery {
	t.Helper()
	fv := make([]fo.Var, len(vars))
	for i, v := range vars {
		fv[i] = fo.Var(v)
	}
	q, err := core.Compile(fo.MustParse(query), fv, core.CompileOptions{})
	if err != nil {
		t.Fatalf("%s: compile: %v", query, err)
	}
	return q
}

// TestConformance runs every shared conformance case through the lowdeg
// engine alone (the three-way battery lives in internal/conform; this is
// the fast, package-local variant that -run-based debugging lands on).
func TestConformance(t *testing.T) {
	for _, c := range conform.Cases() {
		g := c.Graph()
		q := compile(t, c.Query, c.Vars...)
		e, err := lowdeg.Preprocess(g, q, lowdeg.Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		want := conform.NewNaive(g, q).Solutions()
		sys := conform.System{
			Name: c.Name + "/lowdeg", Engine: e, K: q.K, N: g.N(),
			NewCursor: func(a []graph.V) conform.Cursor { return e.IteratorFrom(a) },
		}
		if err := conform.CheckAll(sys, want); err != nil {
			t.Error(err)
		}
	}
}

// TestParallelBuildDeterminism: the engine must be identical for any
// worker count (per-vertex ball rows are worker-owned; starter lists are
// reassembled in vertex order).
func TestParallelBuildDeterminism(t *testing.T) {
	g := gen.Generate(gen.BoundedDegree, 200, gen.Options{Seed: 3, Colors: 2})
	q := compile(t, "dist(x,y) > 2 & C0(y)", "x", "y")
	seq, err := lowdeg.Preprocess(g, q, lowdeg.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := lowdeg.Preprocess(g, q, lowdeg.Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	a, b := conform.Materialize(seq), conform.Materialize(par)
	if len(a) != len(b) {
		t.Fatalf("worker counts disagree: %d vs %d solutions", len(a), len(b))
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("solution %d differs: %v vs %v", i, a[i], b[i])
			}
		}
	}
	ss, ps := seq.Stats(), par.Stats()
	if ss.BallEntries != ps.BallEntries || ss.CompEntries != ps.CompEntries {
		t.Fatalf("ball structure differs: %+v vs %+v", ss, ps)
	}
	if len(ss.StarterSizes) != len(ps.StarterSizes) {
		t.Fatalf("starter shapes differ: %v vs %v", ss.StarterSizes, ps.StarterSizes)
	}
	for i := range ss.StarterSizes {
		if ss.StarterSizes[i] != ps.StarterSizes[i] {
			t.Fatalf("starter %d differs: %v vs %v", i, ss.StarterSizes, ps.StarterSizes)
		}
	}
}

// TestPreprocessCancel: a canceled context aborts preprocessing.
func TestPreprocessCancel(t *testing.T) {
	g := gen.Generate(gen.Grid, 400, gen.Options{Seed: 1, Colors: 2})
	q := compile(t, "dist(x,y) > 2 & C0(y)", "x", "y")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := lowdeg.Preprocess(g, q, lowdeg.Options{Ctx: ctx}); err == nil {
		t.Fatal("expected cancellation error")
	}
}

// TestStatsAndExplain sanity-checks the introspection surfaces.
func TestStatsAndExplain(t *testing.T) {
	g := gen.Generate(gen.BoundedDegree, 120, gen.Options{Seed: 2, Colors: 2})
	q := compile(t, "dist(x,y) > 2 & C0(y)", "x", "y")
	reg := obs.New()
	e, err := lowdeg.Preprocess(g, q, lowdeg.Options{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.BallRadius != q.R || st.BallEntries < g.N() {
		t.Fatalf("implausible ball stats: %+v", st)
	}
	if st.MaxDegree != g.MaxDegree() {
		t.Fatalf("MaxDegree = %d, want %d", st.MaxDegree, g.MaxDegree())
	}
	e.Count()
	if st = e.Stats(); st.Candidates == 0 {
		t.Fatal("enumeration recorded no candidates")
	}
	if e.Obs() != reg {
		t.Fatal("Obs registry not retained")
	}
	out := e.Explain()
	for _, frag := range []string{"lowdeg engine", "balls:", "clause 0"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("Explain output missing %q:\n%s", frag, out)
		}
	}
	if e.Graph() != g || e.Query() != q {
		t.Fatal("accessors lost the build inputs")
	}
}

// TestApplyEditsRebuild: edits that change the graph rebuild, a batch
// netting out to the identity returns the same engine, and the rebuilt
// engine answers for the patched graph.
func TestApplyEditsRebuild(t *testing.T) {
	g := gen.Generate(gen.Path, 40, gen.Options{Seed: 5, Colors: 2})
	q := compile(t, "dist(x,y) > 2 & C0(y)", "x", "y")
	e, err := lowdeg.Preprocess(g, q, lowdeg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	edits := []graph.Edit{{Op: graph.AddEdge, U: 0, V: 20}}
	e2, err := e.ApplyEdits(context.Background(), edits)
	if err != nil {
		t.Fatal(err)
	}
	if e2 == e {
		t.Fatal("expected a rebuild for a real edit")
	}
	g2, err := graph.Patch(g, edits)
	if err != nil {
		t.Fatal(err)
	}
	want := conform.NewNaive(g2, q).Solutions()
	sys := conform.System{Name: "rebuilt", Engine: e2, K: q.K, N: g2.N()}
	if err := conform.CheckEnumeration(sys, want); err != nil {
		t.Fatal(err)
	}
	// Add + remove the same edge: the patched graph equals the original,
	// so the engine must be returned unchanged (graph.Equal, not pointer
	// identity — Patch always copies).
	undo := []graph.Edit{
		{Op: graph.AddEdge, U: 0, V: 30},
		{Op: graph.RemoveEdge, U: 0, V: 30},
	}
	e3, err := e.ApplyEdits(context.Background(), undo)
	if err != nil {
		t.Fatal(err)
	}
	if e3 != e {
		t.Fatal("identity edit batch should return the receiver")
	}
}

// TestFastCountAgainstEnumeration pins all three FastCount shapes (unary,
// binary close/far, connected ternary) to the enumeration count.
func TestFastCountAgainstEnumeration(t *testing.T) {
	cases := []struct {
		query string
		vars  []string
	}{
		{"C0(x) & exists z (E(x,z) & C1(z))", []string{"x"}},
		{"dist(x,y) > 2 & C0(y)", []string{"x", "y"}},
		{"dist(x,y) <= 2 & C0(x) & C1(y)", []string{"x", "y"}},
		{"dist(x,y) > 2 & C0(x) | dist(x,y) > 2 & C1(y)", []string{"x", "y"}},
		{"dist(x,y) <= 1 & dist(y,z) <= 1 & C0(x)", []string{"x", "y", "z"}},
	}
	for _, c := range cases {
		q := compile(t, c.query, c.vars...)
		for _, class := range []gen.Class{gen.BoundedDegree, gen.Caterpillar, gen.Grid} {
			g := gen.Generate(class, 90, gen.Options{Seed: 7, Colors: 2})
			e, err := lowdeg.Preprocess(g, q, lowdeg.Options{})
			if err != nil {
				t.Fatalf("%s/%s: %v", c.query, class, err)
			}
			fast, ok := e.FastCount()
			if !ok {
				t.Fatalf("%s on %s: FastCount unsupported", c.query, class)
			}
			if slow := e.Count(); fast != slow {
				t.Fatalf("%s on %s: FastCount %d != Count %d", c.query, class, fast, slow)
			}
		}
	}
}

// TestCountCtx mirrors the core pin: CountCtx equals Count under a live
// context and returns context.Canceled (never a partial count) once
// canceled. The far query has ~n² answers — well past the 4096-answer
// poll interval.
func TestCountCtx(t *testing.T) {
	q := compile(t, "dist(x,y) > 2 & C0(y)", "x", "y")
	g := gen.Generate(gen.BoundedDegree, 300, gen.Options{Seed: 7, Colors: 1})
	e, err := lowdeg.Preprocess(g, q, lowdeg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := e.CountCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if want := e.Count(); n != want {
		t.Fatalf("CountCtx %d != Count %d", n, want)
	}
	if n <= 4096 {
		t.Fatalf("fixture too small to exercise the poll: %d answers", n)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if n, err := e.CountCtx(ctx); err != context.Canceled || n != 0 {
		t.Fatalf("canceled CountCtx = (%d, %v), want (0, context.Canceled)", n, err)
	}
}

// TestFastCountUnsupportedShape: a disconnected arity-3 query has no fast
// path; ok=false tells the caller to fall back to Count.
func TestFastCountUnsupportedShape(t *testing.T) {
	q := compile(t, "dist(x,z) > 2 & dist(y,z) > 2 & C0(z)", "x", "y", "z")
	g := gen.Generate(gen.Path, 30, gen.Options{Seed: 1, Colors: 1})
	e, err := lowdeg.Preprocess(g, q, lowdeg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.FastCount(); ok {
		t.Fatal("disconnected arity-3 FastCount should be unsupported")
	}
}
