// Package lowdeg implements the low-degree constant-delay enumeration
// engine of Durand, Schweikardt & Segoufin, "Enumerating Answers to
// First-Order Queries over Databases of Low Degree" (PODS 2014) — the
// cheaper sibling of the nowhere-dense engine in internal/core, for the
// common case where the input graph has bounded maximum degree d.
//
// On such graphs every radius-r neighborhood N_r(v) has at most
// 1 + d·(d−1)^{r−1}·r ≤ d^r + 1 vertices, so the whole machinery the
// general engine needs to tame unbounded neighborhoods — neighborhood
// covers, R-kernels, skip pointers, a bag-sharded distance index — can be
// dropped. Preprocessing materializes, per vertex, the sorted distance-R
// ball (one CSR array) and, for arities ≥ 3, the sorted radius-R(k−1)
// ball that contains every completion of a type component. Distance-type
// tests become binary searches in these constant-size rows, and the
// Case I "next far candidate" search is a forward scan of the sorted
// starter list: every rejected candidate lies in the R-ball of one of the
// ≤ k−1 prefix elements, so at most (k−1)·d^R entries are skipped before
// the scan succeeds or leaves the obstruction — constant delay for
// constant d.
//
// The engine answers through the same contract as core.Engine (NextGeq,
// NextGt, NextLast, Test, Enumerate, Count, FastCount, Iterator) and is
// differential-tested against it and the naive oracle by the
// internal/conform battery; queries are consumed in the identical
// decomposed LocalQuery form, so the two engines are interchangeable
// behind the repro facade.
package lowdeg

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fo"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/par"
)

// Options tunes Preprocess.
type Options struct {
	// Parallelism bounds the preprocessing worker count. 0 selects
	// runtime.GOMAXPROCS(0); 1 reproduces the sequential build bit for
	// bit. Any value yields an identical engine.
	Parallelism int
	// Ctx, when non-nil, bounds the preprocessing: it is checked between
	// the ball and per-clause starter phases. Nil means no deadline.
	Ctx context.Context
	// Obs, when non-nil, registers the answering counters (lowdeg.*) and
	// structural gauges. Nil keeps the engine uninstrumented.
	Obs *obs.Registry
}

// Stats reports preprocessing facts and running counters of the answering
// phase.
type Stats struct {
	MaxDegree    int   // max vertex degree of the input graph
	BallRadius   int   // R, the distance-type threshold
	CompRadius   int   // R·(k−1), the component-completion radius
	BallEntries  int   // Σ_v |N_R(v)|, the size of the distance structure
	CompEntries  int   // Σ_v |N_{R(k−1)}(v)| (equals BallEntries for k ≤ 2)
	StarterSizes []int // per (clause, component) starter-list size

	Candidates    int // candidates examined by NextGeq calls
	DeadEnds      int // candidates rejected after deeper levels failed
	LocalEvals    int // local formula evaluations (memo misses)
	LocalEvalHits int // memo hits

	Workers     int           // preprocessing parallelism used
	BallWall    time.Duration // wall time of the ball materialization
	StarterWall time.Duration // wall time of starter-list computation
}

// counters holds the answering-phase statistics as atomic instruments so
// concurrent queries can bump them without a lock.
type counters struct {
	candidates    obs.Counter
	deadEnds      obs.Counter
	localEvals    obs.Counter
	localEvalHits obs.Counter
}

// Engine is the preprocessed low-degree structure for one graph and one
// LocalQuery. Preprocess must complete before use; afterwards the
// answering methods are safe for concurrent use (pooled BFS scratch,
// concurrent memo maps, atomic counters).
type Engine struct {
	g   *graph.Graph
	q   *core.LocalQuery
	k   int
	r   int // distance-type threshold R
	rho int // local radius ρ

	// ballR is the CSR of sorted radius-R balls: row v (between offsets
	// ballROff[v] and ballROff[v+1]) lists N_R(v) ascending, v included.
	// The dist(a,b) ≤ R test of the answering phase is one binary search
	// in row a — the low-degree replacement for the dist.Index.
	ballROff []int32
	ballRAdj []int32
	// ballC is the CSR of sorted radius-R(k−1) balls, the candidate space
	// for completing a type component around its first element. For
	// k ≤ 2 the radii coincide and ballC aliases ballR.
	ballCOff []int32
	ballCAdj []int32

	clauses []*clauseRT
	liveIdx []int // indices into q.Clauses of guard-surviving clauses

	bfsPool sync.Pool // *graph.BFS on g, for local evaluations
	evPool  sync.Pool // *fo.Evaluator on g, for guarded local evaluations
	envPool sync.Pool // fo.Env scratch for guarded local evaluations

	opt    Options // retained for the ApplyEdits rebuild path
	stats  Stats
	ctr    counters
	obsReg *obs.Registry
}

// clauseRT is the runtime form of one clause.
type clauseRT struct {
	clause  *core.Clause
	comps   []*compRT
	compOf  []int // position -> index into comps
	firstOf []int // position -> earliest position of its component
}

// compRT is the runtime form of one component formula.
type compRT struct {
	positions []int
	typ       *fo.DistType
	psi       fo.Formula
	vars      []fo.Var // PosVar of each position, aligned with positions
	last      int      // max position (where ψ gets tested)

	starter      []graph.V // sorted vertices that can open the component
	inStart      []bool    // membership, indexed by vertex
	starterReady bool      // singleton component: inStart is the solution set

	memo sync.Map // tupleKey -> bool, local evaluation memo
}

// Preprocess builds the low-degree index: sorted per-vertex balls and
// per-clause starter lists. Cost O(n · d^{R(k−1)} · eval) — linear for
// constant degree — with no cover, kernels or skip pointers.
func Preprocess(g *graph.Graph, q *core.LocalQuery, opt Options) (*Engine, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	checkpoint := func() error {
		select {
		case <-ctx.Done():
			return fmt.Errorf("lowdeg: preprocessing canceled: %w", context.Cause(ctx))
		default:
			return nil
		}
	}
	if err := checkpoint(); err != nil {
		return nil, err
	}
	e := &Engine{g: g, q: q, k: q.K, r: q.R, rho: q.LocalRadius, opt: opt, obsReg: opt.Obs}
	e.bfsPool.New = func() any { return graph.NewBFS(g) }
	e.evPool.New = func() any { return fo.NewEvaluator(g) }
	e.envPool.New = func() any { return fo.Env{} }
	workers := par.Resolve(opt.Parallelism)
	pool := par.NewPool(workers)
	e.stats.Workers = workers
	e.stats.MaxDegree = g.MaxDegree()
	e.stats.BallRadius = e.r
	compR := e.r * (e.k - 1)
	if compR < e.r {
		compR = e.r // k = 1: keep one usable radius
	}
	e.stats.CompRadius = compR

	start := time.Now()
	e.ballROff, e.ballRAdj = ballCSR(g, e.r, pool)
	e.stats.BallEntries = len(e.ballRAdj)
	if compR == e.r {
		e.ballCOff, e.ballCAdj = e.ballROff, e.ballRAdj
	} else {
		e.ballCOff, e.ballCAdj = ballCSR(g, compR, pool)
	}
	e.stats.CompEntries = len(e.ballCAdj)
	e.stats.BallWall = time.Since(start)
	if err := checkpoint(); err != nil {
		return nil, err
	}

	// Evaluate guards once (the ξ^i_τ sentences of Theorem 5.4) and drop
	// failing clauses, exactly as the core engine does.
	var live []core.Clause
	for ci := range q.Clauses {
		if q.Guards != nil && q.Guards[ci] != nil {
			gd := q.Guards[ci]
			holds := fo.NewEvaluator(g).Eval(gd.Sentence, fo.Env{})
			if holds == gd.Negated {
				continue
			}
		}
		e.liveIdx = append(e.liveIdx, ci)
		live = append(live, q.Clauses[ci])
	}

	for ci := range live {
		if err := checkpoint(); err != nil {
			return nil, err
		}
		e.clauses = append(e.clauses, e.buildClause(&live[ci], pool))
	}
	e.exportInstruments(opt.Obs)
	return e, nil
}

// ballCSR materializes the sorted radius-r ball of every vertex as one
// flat CSR array. Each vertex owns its row, so the per-vertex BFS fans
// out across the pool and the result is worker-count-independent.
func ballCSR(g *graph.Graph, r int, pool *par.Pool) ([]int32, []int32) {
	n := g.N()
	rows := make([][]int32, n)
	nw := pool.Workers()
	scratch := make([]*graph.BFS, nw)
	for w := range scratch {
		scratch[w] = graph.NewBFS(g)
	}
	pool.ForEachWorker(n, func(wk, v int) {
		ball := scratch[wk].BallMulti([]graph.V{v}, r)
		row := make([]int32, len(ball))
		copy(row, ball)
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
		rows[v] = row
	})
	off := make([]int32, n+1)
	total := 0
	for v := 0; v < n; v++ {
		total += len(rows[v])
		off[v+1] = int32(total)
	}
	adj := make([]int32, total)
	for v := 0; v < n; v++ {
		copy(adj[off[v]:off[v+1]], rows[v])
	}
	return off, adj
}

func (e *Engine) buildClause(cl *core.Clause, pool *par.Pool) *clauseRT {
	rt := &clauseRT{
		clause:  cl,
		compOf:  make([]int, e.k),
		firstOf: make([]int, e.k),
	}
	start := time.Now()
	for li := range cl.Locals {
		lf := &cl.Locals[li]
		c := &compRT{
			positions: lf.Positions,
			typ:       cl.Type,
			psi:       lf.Psi,
			last:      lf.Positions[len(lf.Positions)-1],
		}
		for _, p := range lf.Positions {
			c.vars = append(c.vars, core.PosVar(p))
			rt.compOf[p] = li
			rt.firstOf[p] = lf.Positions[0]
		}
		e.computeStarter(c, pool)
		e.stats.StarterSizes = append(e.stats.StarterSizes, len(c.starter))
		rt.comps = append(rt.comps, c)
	}
	e.stats.StarterWall += time.Since(start)
	return rt
}

// computeStarter fills c.starter: the vertices that can take the
// component's first position. Singleton components get the full unary
// solution list (starterReady: later evaluations answer from the bitmap
// in O(1)); multi-position components search the R(k−1)-ball around each
// vertex for a completion respecting the internal distance pattern.
func (e *Engine) computeStarter(c *compRT, pool *par.Pool) {
	c.inStart = make([]bool, e.g.N())
	pool.ForEach(e.g.N(), func(v int) {
		if len(c.positions) == 1 {
			c.inStart[v] = e.localEval(c, []graph.V{v})
		} else {
			c.inStart[v] = e.completesComponent(c, []graph.V{v})
		}
	})
	for v, in := range c.inStart {
		if in {
			c.starter = append(c.starter, v)
		}
	}
	if len(c.positions) == 1 {
		c.starterReady = true
	}
}

// completesComponent reports whether the partial component assignment
// (values for c.positions[:len(vals)]) extends to a full local solution,
// searching candidates in the R(k−1)-ball of the first value — which
// contains every completion, since component positions are chained by
// close edges of length ≤ R.
func (e *Engine) completesComponent(c *compRT, vals []graph.V) bool {
	if len(vals) == len(c.positions) {
		return e.checkComponentType(c, vals) && e.localEval(c, vals)
	}
	row := e.ballCRow(vals[0])
	for _, w32 := range row {
		w := graph.V(w32)
		if e.partialTypeOK(c, vals, w) && e.completesComponent(c, append(vals, w)) {
			return true
		}
	}
	return false
}

// partialTypeOK checks the distance-type edges between the prospective
// value w (for position c.positions[len(vals)]) and the placed values.
func (e *Engine) partialTypeOK(c *compRT, vals []graph.V, w graph.V) bool {
	pj := c.positions[len(vals)]
	for i, v := range vals {
		pi := c.positions[i]
		if e.within(v, w) != c.typ.Close(pi, pj) {
			return false
		}
	}
	return true
}

// checkComponentType re-verifies all internal type edges of the component.
func (e *Engine) checkComponentType(c *compRT, vals []graph.V) bool {
	for i := range vals {
		for j := i + 1; j < len(vals); j++ {
			if e.within(vals[i], vals[j]) != c.typ.Close(c.positions[i], c.positions[j]) {
				return false
			}
		}
	}
	return true
}

// localEval evaluates ψ_I(ā_I) with memoization, branching exactly as the
// core engine does: compiler-certified (Guarded) queries evaluate over
// the global graph with quantifiers restricted to the ρ-ball domain (no
// subgraph construction — every quantifier is witness-guarded within ρ,
// so the two semantics agree); hand-built queries get the literal
// G[N_ρ(ā_I)] induced-subgraph semantics of core.EvalReference.
func (e *Engine) localEval(c *compRT, vals []graph.V) bool {
	if c.starterReady && len(vals) == 1 {
		return c.inStart[vals[0]]
	}
	//fod:coldpath memo key of the general-component path — singleton components (the pinned 0-alloc guards) take the starterReady fast path above
	key := tupleKey(vals)
	if r, ok := c.memo.Load(key); ok {
		e.ctr.localEvalHits.Add(1)
		return r.(bool)
	}
	e.ctr.localEvals.Add(1)
	var res bool
	if e.q.Guarded {
		bfs := e.bfsPool.Get().(*graph.BFS)
		ball := bfs.BallMulti(vals, e.rho)
		domain := make([]graph.V, len(ball))
		for i, w := range ball {
			domain[i] = int(w)
		}
		e.bfsPool.Put(bfs)
		env := e.envPool.Get().(fo.Env)
		clear(env)
		for i, v := range vals {
			env[c.vars[i]] = v
		}
		ev := e.evPool.Get().(*fo.Evaluator)
		res = ev.EvalOver(c.psi, env, domain)
		e.evPool.Put(ev)
		e.envPool.Put(env)
	} else {
		// Hand-built (uncertified) queries only: the pinned 0-alloc delay
		// guards all run compiler-certified queries, and the memo above
		// makes this a once-per-tuple cost, not a per-answer one.
		//fod:coldpath memoized fallback for uncertified queries
		res = e.exactBallEval(c, vals)
	}
	c.memo.Store(key, res)
	return res
}

func (e *Engine) exactBallEval(c *compRT, vals []graph.V) bool {
	bfs := e.bfsPool.Get().(*graph.BFS)
	ball := bfs.BallMulti(vals, e.rho)
	vs := make([]graph.V, len(ball))
	for i, w := range ball {
		vs[i] = int(w)
	}
	e.bfsPool.Put(bfs)
	sub := graph.Induce(e.g, vs)
	ev := fo.NewCachedEvaluator(sub.G)
	env := fo.Env{}
	for i, v := range vals {
		env[c.vars[i]] = sub.Local(v)
	}
	return ev.Eval(c.psi, env)
}

func tupleKey(vals []graph.V) string {
	b := make([]byte, 0, len(vals)*5)
	for _, v := range vals {
		for v >= 0x80 {
			b = append(b, byte(v)|0x80)
			v >>= 7
		}
		b = append(b, byte(v))
	}
	return string(b)
}

// within reports dist_G(a, b) ≤ R by binary search in the sorted ball row
// of a — the low-degree replacement for dist.Index.Within.
//
//fod:hotpath
func (e *Engine) within(a, b graph.V) bool {
	if a == b {
		return true
	}
	row := e.ballRAdj[e.ballROff[a]:e.ballROff[a+1]]
	lo, hi := 0, len(row)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if row[mid] < int32(b) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(row) && row[lo] == int32(b)
}

// ballCRow returns the sorted radius-R(k−1) ball of v.
//
//fod:hotpath
func (e *Engine) ballCRow(v graph.V) []int32 {
	return e.ballCAdj[e.ballCOff[v]:e.ballCOff[v+1]]
}

// exportInstruments registers the engine's counters and structural gauges
// in reg; a nil registry leaves the engine uninstrumented.
func (e *Engine) exportInstruments(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.RegisterCounter("lowdeg.candidates", &e.ctr.candidates)
	reg.RegisterCounter("lowdeg.dead_ends", &e.ctr.deadEnds)
	reg.RegisterCounter("lowdeg.local_evals", &e.ctr.localEvals)
	reg.RegisterCounter("lowdeg.local_eval_hits", &e.ctr.localEvalHits)
	reg.Gauge("lowdeg.workers").Set(int64(e.stats.Workers))
	reg.Gauge("lowdeg.max_degree").Set(int64(e.stats.MaxDegree))
	reg.Gauge("lowdeg.ball_entries").Set(int64(e.stats.BallEntries))
	reg.Gauge("lowdeg.clauses").Set(int64(len(e.clauses)))
}

// Stats returns an isolated snapshot of the current statistics.
func (e *Engine) Stats() Stats {
	s := e.stats
	s.StarterSizes = append([]int(nil), e.stats.StarterSizes...)
	s.Candidates = int(e.ctr.candidates.Load())
	s.DeadEnds = int(e.ctr.deadEnds.Load())
	s.LocalEvals = int(e.ctr.localEvals.Load())
	s.LocalEvalHits = int(e.ctr.localEvalHits.Load())
	return s
}

// Obs returns the registry the engine records into (nil when built
// without Options.Obs).
func (e *Engine) Obs() *obs.Registry { return e.obsReg }

// Graph returns the underlying graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Query returns the query the engine was built for.
func (e *Engine) Query() *core.LocalQuery { return e.q }

// ApplyEdits returns an engine answering the query over the edited graph.
// The low-degree engine has no incremental path: preprocessing is already
// linear with a small constant, so the documented fallback is to patch
// the graph copy-on-write and rebuild from scratch with the same options
// (the conformance battery covers this route). A batch that nets out to
// the identity returns the receiver unchanged.
func (e *Engine) ApplyEdits(ctx context.Context, edits []graph.Edit) (*Engine, error) {
	g2, err := graph.Patch(e.g, edits)
	if err != nil {
		return nil, err
	}
	if graph.Equal(g2, e.g) {
		return e, nil
	}
	opt := e.opt
	opt.Ctx = ctx
	return Preprocess(g2, e.q, opt)
}

// Explain renders the engine structure — the low-degree analogue of the
// core engine's EXPLAIN output.
func (e *Engine) Explain() string {
	s := fmt.Sprintf("lowdeg engine: k=%d R=%d ρ=%d\n", e.k, e.r, e.rho)
	s += fmt.Sprintf("  graph: n=%d m=%d maxdeg=%d\n", e.g.N(), e.g.M(), e.stats.MaxDegree)
	s += fmt.Sprintf("  balls: radius %d (%d entries), completion radius %d (%d entries)\n",
		e.stats.BallRadius, e.stats.BallEntries, e.stats.CompRadius, e.stats.CompEntries)
	for ci, rt := range e.clauses {
		s += fmt.Sprintf("  clause %d: type %s\n", ci, rt.clause.Type)
		for _, c := range rt.comps {
			s += fmt.Sprintf("    component %v: |starter|=%d psi=%s\n", c.positions, len(c.starter), c.psi)
		}
	}
	return s
}
