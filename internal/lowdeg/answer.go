package lowdeg

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/graph"
)

// NextGeq returns the lexicographically smallest solution ā′ ≥ ā, or
// ok=false — the Theorem 2.3 primitive, here with the low-degree
// candidate generators: distance tests are binary searches in sorted
// R-balls and Case I is a bounded forward scan of the starter list.
func (e *Engine) NextGeq(a []graph.V) ([]graph.V, bool) {
	if len(a) != e.k {
		panic(fmt.Sprintf("lowdeg: tuple arity %d, want %d", len(a), e.k))
	}
	return e.nextGeq(a)
}

//fod:hotpath
func (e *Engine) nextGeq(a []graph.V) ([]graph.V, bool) {
	if e.g.N() == 0 {
		return nil, false
	}
	var best []graph.V
	for _, rt := range e.clauses {
		cand := e.nextClause(rt, a)
		if cand != nil && (best == nil || lexLess(cand, best)) {
			best = cand
		}
	}
	if best == nil {
		return nil, false
	}
	return best, true
}

// NextGt returns the smallest solution strictly greater than ā.
func (e *Engine) NextGt(a []graph.V) ([]graph.V, bool) {
	succ, ok := incrementTuple(a, e.g.N())
	if !ok {
		return nil, false
	}
	return e.NextGeq(succ)
}

// NextLast is the Lemma 5.2 primitive: for a fixed (k−1)-prefix ā it
// returns the smallest b′ ≥ b with (ā, b′) ∈ q(G).
func (e *Engine) NextLast(prefix []graph.V, b graph.V) (graph.V, bool) {
	if len(prefix) != e.k-1 {
		panic(fmt.Sprintf("lowdeg: prefix arity %d, want %d", len(prefix), e.k-1))
	}
	return e.nextLast(prefix, b)
}

//fod:hotpath
func (e *Engine) nextLast(prefix []graph.V, b graph.V) (graph.V, bool) {
	if b < 0 {
		b = 0
	}
	best := graph.V(-1)
	for _, rt := range e.clauses {
		if !e.prefixMatches(rt, prefix) {
			continue
		}
		if v := e.nextCandidate(rt, e.k-1, prefix, b); v >= 0 && (best < 0 || v < best) {
			best = v
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// prefixMatches checks the clause constraints involving only the prefix:
// its internal distance pattern and the component formulas of components
// fully contained in it.
//
//fod:hotpath
func (e *Engine) prefixMatches(rt *clauseRT, prefix []graph.V) bool {
	for i := range prefix {
		for j := i + 1; j < len(prefix); j++ {
			if e.within(prefix[i], prefix[j]) != rt.clause.Type.Close(i, j) {
				return false
			}
		}
	}
	for _, c := range rt.comps {
		if c.last >= len(prefix) {
			continue
		}
		if c.starterReady {
			// Singleton component: the starter bitmap answers in O(1).
			if !c.inStart[prefix[c.positions[0]]] {
				return false
			}
			continue
		}
		vals := make([]graph.V, len(c.positions))
		for i, p := range c.positions {
			vals[i] = prefix[p]
		}
		if !e.localEval(c, vals) {
			return false
		}
	}
	return true
}

// Test is the Corollary 2.4 constant-time membership check.
func (e *Engine) Test(a []graph.V) bool {
	if len(a) != e.k {
		panic(fmt.Sprintf("lowdeg: tuple arity %d, want %d", len(a), e.k))
	}
	return e.test(a)
}

// test checks ā against every live clause; with singleton components
// (starterReady) it performs only binary searches and bitmap probes, so
// the LOWDEG_GUARD suite pins it at 0 allocs/op.
//
//fod:hotpath
func (e *Engine) test(a []graph.V) bool {
	for _, rt := range e.clauses {
		if e.testClause(rt, a) {
			return true
		}
	}
	return false
}

//fod:hotpath
func (e *Engine) testClause(rt *clauseRT, a []graph.V) bool {
	for i := 0; i < e.k; i++ {
		for j := i + 1; j < e.k; j++ {
			if e.within(a[i], a[j]) != rt.clause.Type.Close(i, j) {
				return false
			}
		}
	}
	for _, c := range rt.comps {
		if c.starterReady {
			if !c.inStart[a[c.positions[0]]] {
				return false
			}
			continue
		}
		vals := make([]graph.V, len(c.positions))
		for i, p := range c.positions {
			vals[i] = a[p]
		}
		if !e.localEval(c, vals) {
			return false
		}
	}
	return true
}

// Enumerate yields every solution exactly once in increasing
// lexicographic order, until exhaustion or until yield returns false.
// The tuple passed to yield is reused; copy it to retain it.
//
//fod:ctxok the yield callback is the cancellation path: any caller that
// must honor a deadline returns false from yield (CountCtx does exactly
// that); a ctx parameter here would put a select on the constant-delay
// loop of every caller, cancellable or not.
func (e *Engine) Enumerate(yield func([]graph.V) bool) {
	if e.g.N() == 0 {
		return
	}
	cur := make([]graph.V, e.k)
	for {
		sol, ok := e.nextGeq(cur)
		if !ok {
			return
		}
		if !yield(sol) {
			return
		}
		next, ok := incrementTuple(sol, e.g.N())
		if !ok {
			return
		}
		cur = next
	}
}

// Count returns |q(G)| by full enumeration.
func (e *Engine) Count() int {
	n := 0
	e.Enumerate(func([]graph.V) bool { n++; return true })
	return n
}

// countCheckEvery is how many answers CountCtx produces between ctx
// polls — the same trade as the core engine's: bounded cancellation
// latency without a per-answer select.
const countCheckEvery = 4096

// CountCtx counts by full enumeration with cooperative cancellation,
// polling ctx every countCheckEvery answers. It returns ctx.Err() if the
// context was canceled before the solution set was exhausted.
func (e *Engine) CountCtx(ctx context.Context) (int, error) {
	n := 0
	canceled := false
	e.Enumerate(func([]graph.V) bool {
		n++
		if n%countCheckEvery == 0 {
			select {
			case <-ctx.Done():
				canceled = true
				return false
			default:
			}
		}
		return true
	})
	if canceled {
		return 0, ctx.Err()
	}
	return n, nil
}

//fod:hotpath
func (e *Engine) nextClause(rt *clauseRT, a []graph.V) []graph.V {
	tuple := make([]graph.V, e.k)
	if e.nextClauseInto(rt, a, tuple) {
		return tuple
	}
	return nil
}

// nextClauseInto writes the smallest tuple ≥ a matching the clause into
// tuple and reports whether one exists — the same lexicographic
// backtracking as the core engine, with the low-degree Case I/II
// candidate generators below.
//
//fod:hotpath
func (e *Engine) nextClauseInto(rt *clauseRT, a, tuple []graph.V) bool {
	return e.nextClauseRec(rt, a, tuple, 0, true)
}

// nextClauseRec places position j of tuple; tight means the prefix equals
// a's, so position j is still bounded below by a[j].
//
//fod:hotpath
func (e *Engine) nextClauseRec(rt *clauseRT, a, tuple []graph.V, j int, tight bool) bool {
	if j == e.k {
		return true
	}
	var lower graph.V
	if tight {
		lower = a[j]
	}
	for v := e.nextCandidate(rt, j, tuple[:j], lower); v >= 0; {
		tuple[j] = v
		e.ctr.candidates.Add(1)
		if e.nextClauseRec(rt, a, tuple, j+1, tight && v == a[j]) {
			return true
		}
		e.ctr.deadEnds.Add(1)
		if v+1 >= e.g.N() {
			break
		}
		v = e.nextCandidate(rt, j, tuple[:j], v+1)
	}
	return false
}

//fod:hotpath
func (e *Engine) nextCandidate(rt *clauseRT, j int, prefix []graph.V, lower graph.V) graph.V {
	if lower >= e.g.N() {
		return -1
	}
	c := rt.comps[rt.compOf[j]]
	if rt.firstOf[j] == j {
		return e.nextOpening(c, prefix, lower)
	}
	return e.nextWithinComponent(rt, c, j, prefix, lower)
}

// nextOpening handles a position that opens a new component (Case I): the
// candidate must come from the starter list at distance > R from every
// prefix element. On a degree-d graph no skip pointers are needed: every
// rejected starter lies in the R-ball of one of the ≤ k−1 prefix
// elements, so the forward scan skips at most (k−1)·d^R entries before
// succeeding or clearing the obstruction — constant delay for constant d.
//
//fod:hotpath
func (e *Engine) nextOpening(c *compRT, prefix []graph.V, lower graph.V) graph.V {
	i := sort.SearchInts(c.starter, lower)
	for ; i < len(c.starter); i++ {
		v := c.starter[i]
		if e.farFromAll(v, prefix) {
			return v
		}
	}
	return -1
}

//fod:hotpath
func (e *Engine) farFromAll(v graph.V, prefix []graph.V) bool {
	for _, p := range prefix {
		if e.within(v, p) {
			return false
		}
	}
	return true
}

// nextWithinComponent handles a position whose component already has a
// placed element (Case II): candidates live in the sorted radius-R(k−1)
// ball of the component's first element — at most d^{R(k−1)}+1 of them.
//
//fod:hotpath
func (e *Engine) nextWithinComponent(rt *clauseRT, c *compRT, j int, prefix []graph.V, lower graph.V) graph.V {
	anchor := prefix[rt.firstOf[j]]
	row := e.ballCRow(anchor)
	i := searchInt32(row, int32(lower))
	for ; i < len(row); i++ {
		v := graph.V(row[i])
		if !e.patternOK(rt, j, prefix, v) {
			continue
		}
		if j == c.last && !e.componentHolds(c, prefix, v) {
			continue
		}
		return v
	}
	return -1
}

// patternOK verifies dist(prefix[i], v) ≤ R exactly matches the clause's
// distance type for every placed position i.
//
//fod:hotpath
func (e *Engine) patternOK(rt *clauseRT, j int, prefix []graph.V, v graph.V) bool {
	for i, p := range prefix {
		if e.within(p, v) != rt.clause.Type.Close(i, j) {
			return false
		}
	}
	return true
}

// componentHolds evaluates ψ_I with the component completed by v at its
// last position.
//
//fod:hotpath
func (e *Engine) componentHolds(c *compRT, prefix []graph.V, v graph.V) bool {
	if c.starterReady {
		return c.inStart[v]
	}
	vals := make([]graph.V, len(c.positions))
	for i, p := range c.positions[:len(c.positions)-1] {
		vals[i] = prefix[p]
	}
	vals[len(vals)-1] = v
	return e.localEval(c, vals)
}

// searchInt32 returns the smallest index i with row[i] >= x (lower-bound
// binary search, written out so the hot path carries no closure).
//
//fod:hotpath
func searchInt32(row []int32, x int32) int {
	lo, hi := 0, len(row)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if row[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

//fod:hotpath
func lexLess(a, b []graph.V) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// incrementTupleInto writes the successor of a in the lexicographic order
// on [0,n)^k into dst; ok=false at the maximum.
//
//fod:hotpath
func incrementTupleInto(dst, a []graph.V, n int) bool {
	copy(dst, a)
	for i := len(dst) - 1; i >= 0; i-- {
		if dst[i]+1 < n {
			dst[i]++
			return true
		}
		dst[i] = 0
	}
	return false
}

// incrementTuple returns the successor of a, or ok=false at the maximum.
func incrementTuple(a []graph.V, n int) ([]graph.V, bool) {
	out := make([]graph.V, len(a))
	if !incrementTupleInto(out, a, n) {
		return nil, false
	}
	return out, true
}
