package lowdeg

import (
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fo"
	"repro/internal/gen"
	"repro/internal/graph"
)

// The LOWDEG_GUARD suite is the tier-3 enforcement of the engine's two
// selling points: preprocessing a bounded-degree graph must be at least
// 5× cheaper than the general nowhere-dense build (no cover, kernels,
// skip pointers or distance index to pay for), and the answering hot path
// must stay allocation-free like the core engine's. Gated behind
// LOWDEG_GUARD=1 and run with -count=1 so a regression cannot hide
// behind the test cache.

func lowdegGuardGate(t *testing.T) {
	t.Helper()
	if os.Getenv("LOWDEG_GUARD") == "" {
		t.Skip("set LOWDEG_GUARD=1 to run the lowdeg guards")
	}
}

// buildE17Query compiles the fodbench E17 configuration: the Example-2
// query over a degree-bounded random graph.
func buildE17Query(t testing.TB) *core.LocalQuery {
	t.Helper()
	phi := fo.MustParse("dist(x,y) > 2 & C0(y)")
	lq, err := core.Compile(phi, []fo.Var{"x", "y"}, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return lq
}

// TestLowdegBuildSpeedGuard pins the headline preprocessing advantage:
// on the E17 degree-bounded graph the lowdeg build must be ≥ 5× cheaper
// than the core build (measured ~18× on the reference machine; 5× leaves
// headroom for noisy CI). Both engines are cross-checked on FastCount
// before any timing is trusted.
func TestLowdegBuildSpeedGuard(t *testing.T) {
	lowdegGuardGate(t)
	g := gen.Generate(gen.BoundedDegree, 4000, gen.Options{Seed: 16, Colors: 2})
	lq := buildE17Query(t)

	// Warm-up + correctness gate: the speed claim is meaningless if the
	// cheap build answers differently.
	ce, err := core.Preprocess(g, lq, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	le, err := Preprocess(g, lq, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cc, _ := ce.FastCount()
	lc, _ := le.FastCount()
	if cc != lc {
		t.Fatalf("FastCount disagrees: core %d vs lowdeg %d", cc, lc)
	}

	// Best-of-3 walls to shave scheduler noise.
	coreWall, lowWall := time.Duration(1<<62), time.Duration(1<<62)
	for i := 0; i < 3; i++ {
		start := time.Now()
		if _, err := core.Preprocess(g, lq, core.Options{}); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < coreWall {
			coreWall = d
		}
		start = time.Now()
		if _, err := Preprocess(g, lq, Options{}); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < lowWall {
			lowWall = d
		}
	}
	t.Logf("core build %v, lowdeg build %v (%.1fx)", coreWall, lowWall, float64(coreWall)/float64(lowWall))
	if lowWall*5 > coreWall {
		t.Errorf("lowdeg build %v is not ≥5x cheaper than core build %v", lowWall, coreWall)
	}
}

func buildGuardEngine(t testing.TB) *Engine {
	t.Helper()
	g := gen.Generate(gen.BoundedDegree, 4000, gen.Options{Seed: 16, Colors: 2})
	e, err := Preprocess(g, buildE17Query(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestLowdegIteratorZeroAllocs pins the constant-delay enumeration step
// at zero allocations per answer in steady state.
func TestLowdegIteratorZeroAllocs(t *testing.T) {
	lowdegGuardGate(t)
	e := buildGuardEngine(t)
	it := e.Iterator()
	if !it.HasNext() {
		t.Fatal("E17 engine produced no solutions")
	}
	zero := make([]graph.V, e.k)
	allocs := testing.AllocsPerRun(2000, func() {
		if _, ok := it.Next(); !ok {
			it.Seek(zero)
		}
	})
	if allocs != 0 {
		t.Errorf("Iterator.Next = %.2f allocs/op, want 0 (//fod:hotpath contract)", allocs)
	}
}

// TestLowdegTestZeroAllocs pins the membership test at zero allocations
// per call, probing solutions and non-solutions alike.
func TestLowdegTestZeroAllocs(t *testing.T) {
	lowdegGuardGate(t)
	e := buildGuardEngine(t)
	var probes [][]graph.V
	e.Enumerate(func(a []graph.V) bool {
		probes = append(probes, append([]graph.V(nil), a...))
		return len(probes) < 64
	})
	if len(probes) == 0 {
		t.Fatal("E17 engine produced no solutions")
	}
	// Interleave guaranteed non-solutions (diagonal tuples are never far
	// from themselves).
	for i := 0; i < 64; i++ {
		v := (i * 31) % e.g.N()
		probes = append(probes, []graph.V{v, v})
	}
	a := make([]graph.V, e.k)
	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		p := probes[i%len(probes)]
		copy(a, p)
		e.Test(a)
		i++
	})
	if allocs != 0 {
		t.Errorf("Engine.Test = %.2f allocs/op, want 0 (//fod:hotpath contract)", allocs)
	}
}

// TestLowdegNextLastZeroAllocs pins the Lemma 5.2 partner primitive at
// zero allocations per call on prefixes with and without partners.
func TestLowdegNextLastZeroAllocs(t *testing.T) {
	lowdegGuardGate(t)
	e := buildGuardEngine(t)
	prefix := make([]graph.V, e.k-1)
	v := 0
	allocs := testing.AllocsPerRun(2000, func() {
		prefix[0] = v % e.g.N()
		e.NextLast(prefix, 0)
		v += 17
	})
	if allocs != 0 {
		t.Errorf("Engine.NextLast = %.2f allocs/op, want 0 (//fod:hotpath contract)", allocs)
	}
}
