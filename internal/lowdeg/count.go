package lowdeg

import "repro/internal/graph"

// FastCount returns |q(G)| without enumerating the result set — the
// Grohe–Schweikardt counting result ([18] of the paper), which on
// low-degree graphs costs one ball scan per vertex. Supported shapes:
// arity 1 (starter union), arity 2 (close groups by ball scan, far groups
// by inclusion–exclusion) and any arity whose live clause types are all
// connected (single component: a recursive ball-confined count). ok=false
// means the query shape is not supported and the caller should fall back
// to Count().
func (e *Engine) FastCount() (int, bool) {
	switch e.k {
	case 1:
		return e.fastCount1(), true
	case 2:
		return e.fastCount2(), true
	}
	if e.allConnected() {
		return e.fastCountConnected(), true
	}
	return 0, false
}

func (e *Engine) fastCount1() int {
	seen := make([]bool, e.g.N())
	total := 0
	for _, rt := range e.clauses {
		for _, v := range rt.comps[0].starter {
			if !seen[v] {
				seen[v] = true
				total++
			}
		}
	}
	return total
}

func (e *Engine) fastCount2() int {
	groups, order := e.groupByType()
	total := 0
	for _, key := range order {
		g := groups[key]
		if g[0].clause.Type.Close(0, 1) {
			total += e.countCloseGroup(g)
		} else {
			total += e.countFarGroup(g)
		}
	}
	return total
}

// groupByType buckets the live clauses by distance type, preserving first-
// appearance order so the count is deterministic.
func (e *Engine) groupByType() (map[string][]*clauseRT, []string) {
	groups := map[string][]*clauseRT{}
	var order []string
	for _, rt := range e.clauses {
		k := rt.clause.Type.Key()
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], rt)
	}
	return groups, order
}

// countCloseGroup counts pairs (a, b) with dist(a,b) ≤ R whose component
// formula holds for at least one clause of the group, by scanning the
// precomputed R-ball row of every vertex.
func (e *Engine) countCloseGroup(group []*clauseRT) int {
	count := 0
	vals := make([]graph.V, 2)
	for a := 0; a < e.g.N(); a++ {
		row := e.ballRAdj[e.ballROff[a]:e.ballROff[a+1]]
		for _, b32 := range row {
			vals[0], vals[1] = a, graph.V(b32)
			for _, rt := range group {
				if e.localEval(rt.comps[0], vals) {
					count++
					break
				}
			}
		}
	}
	return count
}

// countFarGroup counts pairs (a, b) with dist(a,b) > R matching at least
// one clause, by inclusion–exclusion over the group's clauses:
//
//	#far(L0, L1) = |L0|·|L1| − #close(L0, L1).
func (e *Engine) countFarGroup(group []*clauseRT) int {
	m := len(group)
	total := 0
	for mask := 1; mask < 1<<uint(m); mask++ {
		var l0, l1 []graph.V
		first := true
		for i := 0; i < m; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			if first {
				l0 = group[i].comps[0].starter
				l1 = group[i].comps[1].starter
				first = false
			} else {
				l0 = intersectSorted(l0, group[i].comps[0].starter)
				l1 = intersectSorted(l1, group[i].comps[1].starter)
			}
		}
		far := len(l0)*len(l1) - e.closePairs(l0, l1)
		if popcount(mask)%2 == 1 {
			total += far
		} else {
			total -= far
		}
	}
	return total
}

// closePairs counts pairs (a, b) with a ∈ A, b ∈ B, dist(a,b) ≤ R, via the
// precomputed R-ball rows.
func (e *Engine) closePairs(A, B []graph.V) int {
	if len(A) == 0 || len(B) == 0 {
		return 0
	}
	inB := make([]bool, e.g.N())
	for _, b := range B {
		inB[b] = true
	}
	count := 0
	for _, a := range A {
		row := e.ballRAdj[e.ballROff[a]:e.ballROff[a+1]]
		for _, b32 := range row {
			if inB[b32] {
				count++
			}
		}
	}
	return count
}

// allConnected reports whether every live clause's distance type has a
// single component, i.e. the query only asserts "close" patterns.
func (e *Engine) allConnected() bool {
	for _, rt := range e.clauses {
		if len(rt.comps) != 1 {
			return false
		}
	}
	return true
}

// fastCountConnected counts the solutions of an all-connected query of
// any arity: every solution tuple lives inside the radius-R(k−1) ball of
// its first element, so the count is one bounded recursion per vertex —
// Σ_a d^{R(k−1)·(k−1)} work, linear for constant degree. Clauses are
// grouped by type (distinct types yield disjoint tuple sets) and a tuple
// is counted once per group via first-match evaluation.
func (e *Engine) fastCountConnected() int {
	groups, order := e.groupByType()
	total := 0
	tuple := make([]graph.V, e.k)
	for _, key := range order {
		g := groups[key]
		for a := 0; a < e.g.N(); a++ {
			tuple[0] = a
			total += e.countConnectedRec(g, tuple, 1)
		}
	}
	return total
}

// countConnectedRec extends tuple[:j] over the ball of tuple[0], checking
// the distance pattern incrementally, and counts the completions matching
// at least one clause of the group.
func (e *Engine) countConnectedRec(group []*clauseRT, tuple []graph.V, j int) int {
	typ := group[0].clause.Type
	if j == e.k {
		for _, rt := range group {
			if e.localEval(rt.comps[0], tuple) {
				return 1
			}
		}
		return 0
	}
	count := 0
	row := e.ballCRow(tuple[0])
	for _, w32 := range row {
		w := graph.V(w32)
		ok := true
		for i := 0; i < j; i++ {
			if e.within(tuple[i], w) != typ.Close(i, j) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		tuple[j] = w
		count += e.countConnectedRec(group, tuple, j+1)
	}
	return count
}

func intersectSorted(a, b []graph.V) []graph.V {
	var out []graph.V
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func popcount(x int) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
