// Differential round-trip tests: for every example-derived graph/query
// pair, build → snapshot → load must answer byte-identically to the
// freshly built index AND to the naive oracle (the PR-2 differential
// harness ground truth), and re-snapshotting the loaded index must
// reproduce the file byte for byte.
package snap_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/fo"
	"repro/internal/naive"
)

// rtCase mirrors the graph/query pairs of the examples/ programs
// (quickstart, roadnetwork, socialnetwork — citations is relational and
// exercises the same engine through the Lemma 2.2 translation) plus the
// differential-harness classes, scaled down for test time.
type rtCase struct {
	name  string
	class string
	n     int
	query string
	vars  []string
}

func rtCases() []rtCase {
	return []rtCase{
		// examples/quickstart
		{"quickstart", "grid", 100, "dist(x,y) > 2 & C0(y)", []string{"x", "y"}},
		// examples/roadnetwork (both queries)
		{"roadnetwork-dead-zone", "kinggrid", 81, "~(exists z (dist(x,z) <= 2 & C0(z)))", []string{"x"}},
		{"roadnetwork-pairs", "kinggrid", 81, "C1(x) & C1(y) & dist(x,y) > 4", []string{"x", "y"}},
		// examples/socialnetwork (both queries)
		{"socialnetwork-uncovered", "bdeg", 60, "C0(x) & ~(exists z (dist(x,z) <= 2 & C1(z)))", []string{"x"}},
		{"socialnetwork-pairs", "bdeg", 60, "C0(x) & C0(y) & dist(x,y) > 2", []string{"x", "y"}},
		// differential-harness classes
		{"path", "path", 60, "dist(x,y) > 2 & C0(y)", []string{"x", "y"}},
		{"cycle-close", "cycle", 45, "dist(x,y) <= 2 & C0(x)", []string{"x", "y"}},
		{"star", "star", 40, "C0(x) & C1(y) & dist(x,y) > 1", []string{"x", "y"}},
		{"caterpillar-exists", "caterpillar", 50, "dist(x,y) > 2 & (exists z (E(x,z) & C0(z)))", []string{"x", "y"}},
		{"ternary", "bdeg", 48, "dist(x,y) > 1 & dist(y,z) > 1 & dist(x,z) > 1 & C0(x)", []string{"x", "y", "z"}},
	}
}

func buildAndReload(t *testing.T, tc rtCase, seed int64) (*repro.Graph, *repro.Index, *repro.Index, []byte) {
	t.Helper()
	g := repro.Generate(tc.class, tc.n, repro.GenOptions{Seed: seed, Colors: 2})
	q, err := repro.ParseQuery(tc.query, tc.vars...)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	built, err := repro.BuildIndex(g, q)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	var buf bytes.Buffer
	if err := built.WriteSnapshot(&buf); err != nil {
		t.Fatalf("write snapshot: %v", err)
	}
	loaded, err := repro.ReadIndexSnapshot(buf.Bytes())
	if err != nil {
		t.Fatalf("read snapshot: %v", err)
	}
	return g, built, loaded, buf.Bytes()
}

func enumerate(ix *repro.Index) [][]int {
	var out [][]int
	ix.Enumerate(func(s []int) bool {
		out = append(out, append([]int(nil), s...))
		return true
	})
	return out
}

func TestRoundTripDifferential(t *testing.T) {
	for _, tc := range rtCases() {
		for seed := int64(1); seed <= 2; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", tc.name, seed), func(t *testing.T) {
				g, built, loaded, _ := buildAndReload(t, tc, seed)

				// Ground truth from the naive oracle of the PR-2 harness.
				vars := make([]fo.Var, len(tc.vars))
				for i, v := range tc.vars {
					vars[i] = fo.Var(v)
				}
				lq, err := core.Compile(fo.MustParse(tc.query), vars, core.CompileOptions{})
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				want := naive.SolutionsLocal(g, lq)

				gotBuilt := enumerate(built)
				gotLoaded := enumerate(loaded)
				if !reflect.DeepEqual(gotBuilt, gotLoaded) {
					t.Fatalf("loaded index enumerates %d solutions, built %d (or different order)",
						len(gotLoaded), len(gotBuilt))
				}
				if len(want) != len(gotLoaded) || (len(want) > 0 && !reflect.DeepEqual(want, gotLoaded)) {
					t.Fatalf("loaded index enumerates %d solutions, naive oracle %d", len(gotLoaded), len(want))
				}

				// Membership: every solution tests true on both; random
				// probes agree tuple-for-tuple.
				rng := rand.New(rand.NewSource(seed))
				for _, sol := range gotBuilt {
					if !loaded.Test(sol) {
						t.Fatalf("loaded.Test(%v) = false for an enumerated solution", sol)
					}
				}
				k := len(tc.vars)
				for probe := 0; probe < 200; probe++ {
					tup := make([]int, k)
					for i := range tup {
						tup[i] = rng.Intn(g.N())
					}
					if got, want := loaded.Test(tup), built.Test(tup); got != want {
						t.Fatalf("Test(%v): loaded %v, built %v", tup, got, want)
					}
				}

				// NextGeq from random seeds: identical successor tuples.
				for probe := 0; probe < 100; probe++ {
					tup := make([]int, k)
					for i := range tup {
						tup[i] = rng.Intn(g.N())
					}
					bs, bok := built.Next(tup)
					ls, lok := loaded.Next(tup)
					if bok != lok || !reflect.DeepEqual(bs, ls) {
						t.Fatalf("Next(%v): loaded (%v,%v), built (%v,%v)", tup, ls, lok, bs, bok)
					}
				}
			})
		}
	}
}

// TestSnapshotDeterministic pins the writer's determinism: the same index
// serializes to identical bytes, and the loaded index re-serializes to
// the exact file it was loaded from.
func TestSnapshotDeterministic(t *testing.T) {
	tc := rtCases()[0]
	_, built, loaded, first := buildAndReload(t, tc, 1)

	var again bytes.Buffer
	if err := built.WriteSnapshot(&again); err != nil {
		t.Fatalf("second write: %v", err)
	}
	if !bytes.Equal(first, again.Bytes()) {
		t.Fatalf("two writes of the same index differ (%d vs %d bytes)", len(first), again.Len())
	}

	var rewrite bytes.Buffer
	if err := loaded.WriteSnapshot(&rewrite); err != nil {
		t.Fatalf("rewrite from loaded index: %v", err)
	}
	if !bytes.Equal(first, rewrite.Bytes()) {
		t.Fatalf("loaded index re-serializes differently (%d vs %d bytes)", len(first), rewrite.Len())
	}
}

// TestSnapshotStatsSurvive checks that the structural statistics of the
// preprocessing survive the round trip — Explain and /v1/stats on a
// restored server must not silently report a hollow index.
func TestSnapshotStatsSurvive(t *testing.T) {
	_, built, loaded, _ := buildAndReload(t, rtCases()[0], 1)
	bs, ls := built.Stats(), loaded.Stats()
	if bs.CoverBags != ls.CoverBags || bs.CoverDegree != ls.CoverDegree || bs.CoverRadius != ls.CoverRadius {
		t.Errorf("cover stats changed: built (%d,%d,%d), loaded (%d,%d,%d)",
			bs.CoverBags, bs.CoverDegree, bs.CoverRadius, ls.CoverBags, ls.CoverDegree, ls.CoverRadius)
	}
	if !reflect.DeepEqual(bs.StarterSizes, ls.StarterSizes) {
		t.Errorf("starter sizes changed: %v → %v", bs.StarterSizes, ls.StarterSizes)
	}
	if bs.SkipPointers != ls.SkipPointers {
		t.Errorf("skip pointers changed: %d → %d", bs.SkipPointers, ls.SkipPointers)
	}
}

// TestSnapshotRejectsForeignGraph ensures a snapshot refuses to restore
// when its embedded fingerprint does not match its graph sections (the
// serve disk tier additionally matches the fingerprint against the
// served graph before restoring).
func TestSnapshotWrongQueryIsCaught(t *testing.T) {
	// A valid snapshot restored through the facade re-checks that the
	// recompiled query matches the serialized engine shape; build one for
	// a k=2 query and check a deliberate arity probe errors cleanly.
	g := repro.Generate("grid", 64, repro.GenOptions{Seed: 1, Colors: 2})
	q := repro.MustParseQuery("dist(x,y) > 2 & C0(y)", "x", "y")
	ix, err := repro.BuildIndex(g, q)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := repro.ReadIndexSnapshot(buf.Bytes()); err != nil {
		t.Fatalf("valid snapshot failed to load: %v", err)
	}
	// Corrupting the canonical text must be caught before restore.
	data := bytes.Replace(buf.Bytes(), []byte(`vars x,y`), []byte(`vars y,x`), 1)
	if _, err := repro.ReadIndexSnapshot(data); err == nil {
		t.Fatal("snapshot with tampered metadata loaded successfully")
	}
}
