package snap

import "fmt"

// i32w builds an int32 stream: scalars and length-prefixed slices. The
// stream is the interior encoding of the structured sections ("graph",
// "cover", "dist", "clauses"); the container only sees one flat []int32.
type i32w struct {
	s []int32
}

func (w *i32w) put(x int32)  { w.s = append(w.s, x) }
func (w *i32w) putInt(x int) { w.s = append(w.s, clamp32(x)) }

// putSlice writes a length prefix followed by the elements.
func (w *i32w) putSlice(v []int32) {
	w.put(int32(len(v)))
	w.s = append(w.s, v...)
}

// clamp32 narrows an int to int32, saturating instead of wrapping. Only
// statistics counters can realistically exceed the int32 range; the
// structural values are all bounded by the graph size.
func clamp32(x int) int32 {
	if x > 1<<31-1 {
		return 1<<31 - 1
	}
	if x < -(1 << 31) {
		return -(1 << 31)
	}
	return int32(x)
}

// i32r consumes an int32 stream with bounds checking: every read is
// validated against the remaining length, and slice reads return
// subslices of the already-materialized section — a hostile length can
// never trigger a large allocation.
type i32r struct {
	name string // section name, for error messages
	s    []int32
	pos  int
}

func (r *i32r) get() (int32, error) {
	if r.pos >= len(r.s) {
		return 0, fmt.Errorf("%w: section %q ends early at word %d", ErrCorrupt, r.name, r.pos)
	}
	x := r.s[r.pos]
	r.pos++
	return x, nil
}

func (r *i32r) getInt() (int, error) {
	x, err := r.get()
	return int(x), err
}

// getSlice reads a length-prefixed slice, aliasing the stream.
func (r *i32r) getSlice() ([]int32, error) {
	n, err := r.getInt()
	if err != nil {
		return nil, err
	}
	if n < 0 || n > len(r.s)-r.pos {
		return nil, fmt.Errorf("%w: section %q claims a %d-word slice with %d words left", ErrCorrupt, r.name, n, len(r.s)-r.pos)
	}
	v := r.s[r.pos : r.pos+n]
	r.pos += n
	return v, nil
}

// finish errors unless the stream was consumed exactly.
func (r *i32r) finish() error {
	if r.pos != len(r.s) {
		return fmt.Errorf("%w: section %q has %d words of trailing data", ErrCorrupt, r.name, len(r.s)-r.pos)
	}
	return nil
}

// i8r consumes an int8 column with the same bounds discipline.
type i8r struct {
	name string
	s    []int8
	pos  int
}

func (r *i8r) take(n int) ([]int8, error) {
	if n < 0 || n > len(r.s)-r.pos {
		return nil, fmt.Errorf("%w: section %q claims %d bytes with %d left", ErrCorrupt, r.name, n, len(r.s)-r.pos)
	}
	v := r.s[r.pos : r.pos+n]
	r.pos += n
	return v, nil
}

func (r *i8r) finish() error {
	if r.pos != len(r.s) {
		return fmt.Errorf("%w: section %q has %d bytes of trailing data", ErrCorrupt, r.name, len(r.s)-r.pos)
	}
	return nil
}
