package snap_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro"
	"repro/internal/snap"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden snapshot fixture")

const goldenPath = "testdata/golden-grid64.fodsnap"

// goldenIndex is the fixed graph/query pair the golden fixture pins. Keep
// it in sync with the committed file: regenerate with
//
//	go test ./internal/snap/ -run TestGolden -update
func goldenIndex(t testing.TB) *repro.Index {
	g := repro.Generate("grid", 64, repro.GenOptions{Seed: 3, Colors: 2})
	ix, err := repro.BuildIndex(g, repro.MustParseQuery("dist(x,y) > 2 & C0(y)", "x", "y"))
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// TestGoldenFormat pins the snapshot format byte for byte: any change to
// the container layout, the section encodings, or the engine's
// serialized structures shows up as a diff against the committed fixture
// and forces a deliberate format-version decision.
func TestGoldenFormat(t *testing.T) {
	ix := goldenIndex(t)
	var buf bytes.Buffer
	if err := ix.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenPath, buf.Len())
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden fixture (regenerate with -update): %v", err)
	}
	got := buf.Bytes()
	if !bytes.Equal(got, want) {
		if len(got) != len(want) {
			t.Fatalf("snapshot format changed: %d bytes, fixture has %d — if intentional, bump snap.Version and run -update",
				len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("snapshot format changed at byte %d (0x%02x vs 0x%02x) — if intentional, bump snap.Version and run -update",
					i, got[i], want[i])
			}
		}
	}
}

// TestGoldenLoads proves old files stay readable: the committed fixture —
// written by whatever code version created it — must still restore and
// answer exactly like a freshly built index.
func TestGoldenLoads(t *testing.T) {
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden fixture (regenerate with -update): %v", err)
	}
	f, err := snap.Parse(data)
	if err != nil {
		t.Fatalf("fixture does not parse: %v", err)
	}
	meta, err := snap.ReadMeta(f)
	if err != nil {
		t.Fatal(err)
	}
	if meta.GraphN != 64 || meta.K != 2 {
		t.Fatalf("fixture metadata off: n=%d k=%d", meta.GraphN, meta.K)
	}
	loaded, err := repro.ReadIndexSnapshot(data)
	if err != nil {
		t.Fatalf("fixture does not restore: %v", err)
	}
	fresh := goldenIndex(t)
	if got, want := enumerate(loaded), enumerate(fresh); !reflect.DeepEqual(got, want) {
		t.Fatalf("fixture answers differently: %d solutions vs %d fresh", len(got), len(want))
	}
}
