// Corruption tests: every damaged input must yield the right typed error
// (ErrTruncated / ErrBadMagic / ErrVersion / ErrCorrupt) and must never
// panic or trigger a length-driven allocation, whatever bytes an attacker
// or a half-written file presents.
package snap_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"repro"
	"repro/internal/snap"
)

// syntheticFile builds a small valid container with one section of every
// kind — enough to exercise the whole Parse surface without an engine.
func syntheticFile(t *testing.T) []byte {
	t.Helper()
	w := snap.NewWriter()
	w.Bytes("meta", []byte(`{"query":"x = y"}`))
	w.I8("deltas", []int8{-1, 0, 1, 127, -128})
	w.I32("ints", []int32{0, 1, -1, 1 << 30})
	w.I64("longs", []int64{-1, 1 << 60})
	w.U64("words", []uint64{0, ^uint64(0)})
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatalf("write synthetic snapshot: %v", err)
	}
	return buf.Bytes()
}

// engineFile builds a real index snapshot (all thirteen-odd sections).
func engineFile(t *testing.T) []byte {
	t.Helper()
	g := repro.Generate("grid", 64, repro.GenOptions{Seed: 3, Colors: 2})
	q := repro.MustParseQuery("dist(x,y) > 2 & C0(y)", "x", "y")
	ix, err := repro.BuildIndex(g, q)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The fixed header layout Parse documents: magic(8) + version u32 +
// nsec u32 + tableLen u64 + tableCRC u64, then the section table whose
// entries are nameLen u32, name, kind u32, off u64, len u64, crc u64.
const headerSize = 32

// patchSectionLen rewrites the table entry for name with a new Len and
// re-seals the table checksum, so only the now-lying length is wrong.
func patchSectionLen(t *testing.T, data []byte, name string, newLen uint64) []byte {
	t.Helper()
	out := append([]byte(nil), data...)
	tblLen := binary.LittleEndian.Uint64(out[16:])
	tbl := out[headerSize : headerSize+tblLen]
	pos := uint64(0)
	for pos < tblLen {
		nameLen := uint64(binary.LittleEndian.Uint32(tbl[pos:]))
		entryName := string(tbl[pos+4 : pos+4+nameLen])
		if entryName == name {
			binary.LittleEndian.PutUint64(tbl[pos+4+nameLen+4+8:], newLen)
			resealTable(out)
			return out
		}
		pos += 4 + nameLen + 4 + 8 + 8 + 8
	}
	t.Fatalf("section %q not found in table", name)
	return nil
}

// resealTable recomputes the header's table checksum after a table edit,
// using the same CRC-64/ECMA polynomial as the writer.
func resealTable(data []byte) {
	tblLen := binary.LittleEndian.Uint64(data[16:])
	binary.LittleEndian.PutUint64(data[24:], crc64ECMA(data[headerSize:headerSize+tblLen]))
}

func crc64ECMA(b []byte) uint64 {
	// hash/crc64 with the ECMA polynomial, bit-reflected — spelled out
	// here so the test does not share code with the implementation.
	const poly = 0xC96C5795D7870F42
	crc := ^uint64(0)
	for _, x := range b {
		crc ^= uint64(x)
		for i := 0; i < 8; i++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ poly
			} else {
				crc >>= 1
			}
		}
	}
	return ^crc
}

func TestCorruptContainer(t *testing.T) {
	valid := syntheticFile(t)

	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{"empty", func(d []byte) []byte { return nil }, snap.ErrTruncated},
		{"short-header", func(d []byte) []byte { return d[:10] }, snap.ErrTruncated},
		{"bad-magic", func(d []byte) []byte {
			copy(d, "NOTASNAP")
			return d
		}, snap.ErrBadMagic},
		{"future-version", func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[8:], 2)
			return d
		}, snap.ErrVersion},
		{"version-zero", func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[8:], 0)
			return d
		}, snap.ErrVersion},
		{"absurd-section-count", func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[12:], 1<<20)
			return d
		}, snap.ErrCorrupt},
		{"table-longer-than-file", func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[16:], uint64(len(d))+8)
			return d
		}, snap.ErrTruncated},
		{"table-checksum-flip", func(d []byte) []byte {
			d[24] ^= 0xFF
			return d
		}, snap.ErrCorrupt},
		{"table-byte-flip", func(d []byte) []byte {
			d[headerSize+2] ^= 0x01 // inside the first entry's name length
			return d
		}, snap.ErrCorrupt},
		{"payload-byte-flip", func(d []byte) []byte {
			d[len(d)-3] ^= 0x40 // inside the last section's payload
			return d
		}, snap.ErrCorrupt},
		{"truncated-half", func(d []byte) []byte { return d[:len(d)/2] }, snap.ErrTruncated},
		{"truncated-last-byte", func(d []byte) []byte { return d[:len(d)-1] }, snap.ErrTruncated},
		{"oversized-section-len", func(d []byte) []byte {
			// The table lies: the section claims vastly more bytes than the
			// file holds. A naive reader would allocate or slice past the
			// end; ours must refuse before touching the payload.
			return patchSectionLen(t, d, "words", 1<<40)
		}, snap.ErrTruncated},
		{"shrunk-section-len", func(d []byte) []byte {
			// Shrinking changes the payload the checksum covers.
			return patchSectionLen(t, d, "ints", 4)
		}, snap.ErrCorrupt},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(append([]byte(nil), valid...))
			_, err := snap.Parse(data)
			if err == nil {
				t.Fatalf("Parse accepted corrupted input (%d bytes)", len(data))
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Parse error = %v, want errors.Is(err, %v)", err, tc.want)
			}
			// The full reader must fail just as cleanly (same class or a
			// more specific corruption found later in decoding).
			if _, err := snap.Read(data); err == nil {
				t.Fatalf("Read accepted corrupted input")
			}
		})
	}
}

// TestCorruptEverySection flips one payload byte inside each section of a
// real engine snapshot; the eager per-section checksum must catch all of
// them at Parse time.
func TestCorruptEverySection(t *testing.T) {
	data := engineFile(t)
	f, err := snap.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range f.Sections() {
		if s.Len == 0 {
			continue
		}
		t.Run(s.Name, func(t *testing.T) {
			mutated := append([]byte(nil), data...)
			mutated[s.Off+s.Len/2] ^= 0x10
			if _, err := snap.Parse(mutated); !errors.Is(err, snap.ErrCorrupt) {
				t.Fatalf("flip in section %q: Parse error = %v, want ErrCorrupt", s.Name, err)
			}
			if _, err := repro.ReadIndexSnapshot(mutated); err == nil {
				t.Fatalf("flip in section %q: ReadIndexSnapshot accepted it", s.Name)
			}
		})
	}
}

// TestCorruptMissingSections drops each section in turn (by rebuilding the
// container without it): decoding must report corruption, not panic on a
// nil slice.
func TestCorruptMissingSections(t *testing.T) {
	data := engineFile(t)
	f, err := snap.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	secs := f.Sections()
	for drop := range secs {
		t.Run(secs[drop].Name, func(t *testing.T) {
			w := snap.NewWriter()
			for i, s := range secs {
				if i == drop {
					continue
				}
				payload := data[s.Off : s.Off+s.Len]
				switch s.Kind {
				case snap.KindBytes:
					w.Bytes(s.Name, payload)
				case snap.KindI8:
					v := make([]int8, len(payload))
					for j, b := range payload {
						v[j] = int8(b)
					}
					w.I8(s.Name, v)
				case snap.KindI32:
					v := make([]int32, len(payload)/4)
					for j := range v {
						v[j] = int32(binary.LittleEndian.Uint32(payload[4*j:]))
					}
					w.I32(s.Name, v)
				case snap.KindI64:
					v := make([]int64, len(payload)/8)
					for j := range v {
						v[j] = int64(binary.LittleEndian.Uint64(payload[8*j:]))
					}
					w.I64(s.Name, v)
				case snap.KindU64:
					v := make([]uint64, len(payload)/8)
					for j := range v {
						v[j] = binary.LittleEndian.Uint64(payload[8*j:])
					}
					w.U64(s.Name, v)
				}
			}
			var buf bytes.Buffer
			if _, err := w.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
			if _, err := snap.Read(buf.Bytes()); err == nil {
				t.Fatalf("Read accepted a snapshot missing section %q", secs[drop].Name)
			}
		})
	}
}

// TestCorruptGarbageMeta ensures a structurally valid container with a
// nonsense metadata record fails with a decode error, not a panic.
func TestCorruptGarbageMeta(t *testing.T) {
	w := snap.NewWriter()
	w.Bytes("meta", []byte(`this is not json`))
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := snap.Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("Parse rejected a valid container: %v", err)
	}
	if _, err := snap.ReadMeta(f); !errors.Is(err, snap.ErrCorrupt) {
		t.Fatalf("ReadMeta error = %v, want ErrCorrupt", err)
	}
	if _, err := snap.Read(buf.Bytes()); err == nil {
		t.Fatal("Read accepted garbage metadata")
	}
}
