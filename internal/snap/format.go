// Package snap implements the on-disk snapshot format for a fully built
// Theorem 2.3 index: one immutable, versioned, checksummed file holding
// the graph, the preprocessed engine parts (cover bags and kernels,
// distance recursion, starter lists, skip-pointer tables, Storing-Theorem
// registers) and a JSON metadata record.
//
// The container is deliberately dumb: a fixed header, a CRC-guarded
// section table, and flat little-endian sections of a single scalar kind
// each ([]byte, []int8, []int32, []int64, []uint64), 8-byte aligned.
// Loading is one sequential read plus near-zero decoding — no gob, no
// reflection; the only per-element work is the little-endian copy into a
// typed slice. The writer is deterministic: the same graph and query
// produce byte-identical files, which the golden-file test pins.
package snap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
)

// Magic identifies snapshot files; it is the first 8 bytes.
const Magic = "FODSNAP1"

// Version is the current format version. Readers reject other versions.
const Version = 1

// Typed errors for the failure classes a loader must distinguish. All
// parse and decode failures wrap one of these (test with errors.Is).
var (
	ErrBadMagic  = errors.New("snap: not a snapshot file")
	ErrVersion   = errors.New("snap: unsupported format version")
	ErrTruncated = errors.New("snap: truncated file")
	ErrCorrupt   = errors.New("snap: corrupt file")
)

// Kind is the scalar element type of a section.
type Kind uint32

const (
	KindBytes Kind = 1
	KindI8    Kind = 2
	KindI32   Kind = 3
	KindI64   Kind = 4
	KindU64   Kind = 5
)

func (k Kind) String() string {
	switch k {
	case KindBytes:
		return "bytes"
	case KindI8:
		return "i8"
	case KindI32:
		return "i32"
	case KindI64:
		return "i64"
	case KindU64:
		return "u64"
	}
	return fmt.Sprintf("kind(%d)", uint32(k))
}

// crcTable is the CRC-64/ECMA table used for the section and table
// checksums and for the graph fingerprint.
var crcTable = crc64.MakeTable(crc64.ECMA)

// headerSize is the fixed prefix: magic(8) + version(4) + nsec(4) +
// tableLen(8) + tableCRC(8).
const headerSize = 32

// maxSections bounds the section count a reader accepts; real snapshots
// have ~a dozen sections.
const maxSections = 4096

// maxNameLen bounds a section name a reader accepts.
const maxNameLen = 255

// Section describes one entry of the section table.
type Section struct {
	Name string
	Kind Kind
	Off  uint64 // byte offset from the start of the file, 8-aligned
	Len  uint64 // payload length in bytes (without padding)
	CRC  uint64 // CRC-64/ECMA of the payload
}

// Writer accumulates named sections and serializes them as one snapshot
// file. Sections are written in the order they were added; adding two
// sections with the same name is a programming error and panics.
type Writer struct {
	secs  []Section
	blobs [][]byte
	names map[string]bool
}

// NewWriter returns an empty snapshot writer.
func NewWriter() *Writer { return &Writer{names: make(map[string]bool)} }

func (w *Writer) add(name string, kind Kind, payload []byte) {
	if len(name) == 0 || len(name) > maxNameLen {
		panic(fmt.Sprintf("snap: section name %q length out of range", name))
	}
	if w.names[name] {
		panic(fmt.Sprintf("snap: duplicate section %q", name))
	}
	w.names[name] = true
	w.secs = append(w.secs, Section{Name: name, Kind: kind, Len: uint64(len(payload)), CRC: crc64.Checksum(payload, crcTable)})
	w.blobs = append(w.blobs, payload)
}

// Bytes adds a raw byte section.
func (w *Writer) Bytes(name string, b []byte) { w.add(name, KindBytes, b) }

// I8 adds an []int8 section.
func (w *Writer) I8(name string, v []int8) {
	b := make([]byte, len(v))
	for i, x := range v {
		b[i] = byte(x)
	}
	w.add(name, KindI8, b)
}

// I32 adds an []int32 section.
func (w *Writer) I32(name string, v []int32) {
	b := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(x))
	}
	w.add(name, KindI32, b)
}

// I64 adds an []int64 section.
func (w *Writer) I64(name string, v []int64) {
	b := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(x))
	}
	w.add(name, KindI64, b)
}

// U64 adds a []uint64 section.
func (w *Writer) U64(name string, v []uint64) {
	b := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[8*i:], x)
	}
	w.add(name, KindU64, b)
}

func pad8(n uint64) uint64 { return (n + 7) &^ 7 }

// tableBytes renders the section table blob (offsets must be set).
func (w *Writer) tableBytes() []byte {
	var b []byte
	var tmp [8]byte
	u32 := func(x uint32) {
		binary.LittleEndian.PutUint32(tmp[:4], x)
		b = append(b, tmp[:4]...)
	}
	u64 := func(x uint64) {
		binary.LittleEndian.PutUint64(tmp[:], x)
		b = append(b, tmp[:]...)
	}
	for _, s := range w.secs {
		u32(uint32(len(s.Name)))
		b = append(b, s.Name...)
		u32(uint32(s.Kind))
		u64(s.Off)
		u64(s.Len)
		u64(s.CRC)
	}
	return b
}

// WriteTo serializes the snapshot. The output is deterministic: it
// depends only on the sections and their order.
func (w *Writer) WriteTo(out io.Writer) (int64, error) {
	// Table size depends only on names, so offsets can be laid out first.
	tblLen := uint64(0)
	for _, s := range w.secs {
		tblLen += 4 + uint64(len(s.Name)) + 4 + 8 + 8 + 8
	}
	off := pad8(headerSize + tblLen)
	for i := range w.secs {
		w.secs[i].Off = off
		off = pad8(off + w.secs[i].Len)
	}
	tbl := w.tableBytes()

	hdr := make([]byte, headerSize)
	copy(hdr, Magic)
	binary.LittleEndian.PutUint32(hdr[8:], Version)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(w.secs)))
	binary.LittleEndian.PutUint64(hdr[16:], tblLen)
	binary.LittleEndian.PutUint64(hdr[24:], crc64.Checksum(tbl, crcTable))

	var written int64
	emit := func(b []byte) error {
		n, err := out.Write(b)
		written += int64(n)
		return err
	}
	if err := emit(hdr); err != nil {
		return written, err
	}
	if err := emit(tbl); err != nil {
		return written, err
	}
	cursor := pad8(headerSize + tblLen)
	if err := emit(make([]byte, cursor-(headerSize+tblLen))); err != nil {
		return written, err
	}
	for i, blob := range w.blobs {
		if err := emit(blob); err != nil {
			return written, err
		}
		cursor += w.secs[i].Len
		if p := pad8(cursor) - cursor; p > 0 {
			if err := emit(make([]byte, p)); err != nil {
				return written, err
			}
			cursor += p
		}
	}
	return written, nil
}

// File is a parsed snapshot: the raw bytes plus the verified section
// table. Every section's checksum has been verified by Parse; the typed
// accessors only decode.
type File struct {
	data   []byte
	secs   []Section
	byName map[string]int
}

// Parse validates data as a snapshot file: magic, version, section table
// bounds and checksum, per-section bounds and checksums. It never
// allocates based on unverified lengths — all claimed ranges are checked
// against len(data) first — so a hostile file cannot cause OOM or panic.
func Parse(data []byte) (*File, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the %d-byte header", ErrTruncated, len(data), headerSize)
	}
	if string(data[:8]) != Magic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadMagic, data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != Version {
		return nil, fmt.Errorf("%w: file has version %d, reader supports %d", ErrVersion, v, Version)
	}
	nsec := binary.LittleEndian.Uint32(data[12:])
	tblLen := binary.LittleEndian.Uint64(data[16:])
	tblCRC := binary.LittleEndian.Uint64(data[24:])
	if nsec > maxSections {
		return nil, fmt.Errorf("%w: %d sections exceeds the limit %d", ErrCorrupt, nsec, maxSections)
	}
	if tblLen > uint64(len(data))-headerSize {
		return nil, fmt.Errorf("%w: section table of %d bytes exceeds the file", ErrTruncated, tblLen)
	}
	tbl := data[headerSize : headerSize+tblLen]
	if crc64.Checksum(tbl, crcTable) != tblCRC {
		return nil, fmt.Errorf("%w: section table checksum mismatch", ErrCorrupt)
	}
	f := &File{data: data, byName: make(map[string]int, nsec)}
	pos := uint64(0)
	for i := uint32(0); i < nsec; i++ {
		if uint64(len(tbl))-pos < 4 {
			return nil, fmt.Errorf("%w: section table ends inside entry %d", ErrCorrupt, i)
		}
		nameLen := uint64(binary.LittleEndian.Uint32(tbl[pos:]))
		pos += 4
		if nameLen == 0 || nameLen > maxNameLen || uint64(len(tbl))-pos < nameLen+4+8+8+8 {
			return nil, fmt.Errorf("%w: section table entry %d malformed", ErrCorrupt, i)
		}
		s := Section{Name: string(tbl[pos : pos+nameLen])}
		pos += nameLen
		s.Kind = Kind(binary.LittleEndian.Uint32(tbl[pos:]))
		s.Off = binary.LittleEndian.Uint64(tbl[pos+4:])
		s.Len = binary.LittleEndian.Uint64(tbl[pos+12:])
		s.CRC = binary.LittleEndian.Uint64(tbl[pos+20:])
		pos += 4 + 8 + 8 + 8
		switch s.Kind {
		case KindBytes, KindI8:
		case KindI32:
			if s.Len%4 != 0 {
				return nil, fmt.Errorf("%w: section %q length %d not a multiple of 4", ErrCorrupt, s.Name, s.Len)
			}
		case KindI64, KindU64:
			if s.Len%8 != 0 {
				return nil, fmt.Errorf("%w: section %q length %d not a multiple of 8", ErrCorrupt, s.Name, s.Len)
			}
		default:
			return nil, fmt.Errorf("%w: section %q has unknown kind %d", ErrCorrupt, s.Name, uint32(s.Kind))
		}
		if s.Off%8 != 0 || s.Off < headerSize+tblLen || s.Off > uint64(len(data)) || s.Len > uint64(len(data))-s.Off {
			return nil, fmt.Errorf("%w: section %q claims bytes [%d, %d+%d) outside the %d-byte file",
				ErrTruncated, s.Name, s.Off, s.Off, s.Len, len(data))
		}
		if crc64.Checksum(data[s.Off:s.Off+s.Len], crcTable) != s.CRC {
			return nil, fmt.Errorf("%w: section %q checksum mismatch", ErrCorrupt, s.Name)
		}
		if _, dup := f.byName[s.Name]; dup {
			return nil, fmt.Errorf("%w: duplicate section %q", ErrCorrupt, s.Name)
		}
		f.byName[s.Name] = len(f.secs)
		f.secs = append(f.secs, s)
	}
	return f, nil
}

// Sections returns the section table in file order.
func (f *File) Sections() []Section { return f.secs }

// SectionCRC returns the already-verified payload checksum of a named
// section. It lets loaders derive checks (like the graph fingerprint)
// from work Parse has already done instead of re-hashing payloads.
func (f *File) SectionCRC(name string) (uint64, bool) {
	i, ok := f.byName[name]
	if !ok {
		return 0, false
	}
	return f.secs[i].CRC, true
}

func (f *File) section(name string, kind Kind) ([]byte, error) {
	i, ok := f.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: missing section %q", ErrCorrupt, name)
	}
	s := f.secs[i]
	if s.Kind != kind {
		return nil, fmt.Errorf("%w: section %q has kind %v, want %v", ErrCorrupt, name, s.Kind, kind)
	}
	return f.data[s.Off : s.Off+s.Len], nil
}

// BytesSection returns a raw byte section.
func (f *File) BytesSection(name string) ([]byte, error) { return f.section(name, KindBytes) }

// I8Section decodes an []int8 section. Like all typed accessors it
// returns a zero-copy view of the file bytes when the host layout allows
// (see zerocopy.go); the caller must treat it as immutable.
func (f *File) I8Section(name string) ([]int8, error) {
	b, err := f.section(name, KindI8)
	if err != nil {
		return nil, err
	}
	return castI8(b), nil
}

// I32Section decodes an []int32 section.
func (f *File) I32Section(name string) ([]int32, error) {
	b, err := f.section(name, KindI32)
	if err != nil {
		return nil, err
	}
	if v, ok := castI32(b); ok {
		return v, nil
	}
	v := make([]int32, len(b)/4)
	for i := range v {
		v[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return v, nil
}

// I64Section decodes an []int64 section.
func (f *File) I64Section(name string) ([]int64, error) {
	b, err := f.section(name, KindI64)
	if err != nil {
		return nil, err
	}
	if v, ok := castI64(b); ok {
		return v, nil
	}
	v := make([]int64, len(b)/8)
	for i := range v {
		v[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return v, nil
}

// U64Section decodes a []uint64 section.
func (f *File) U64Section(name string) ([]uint64, error) {
	b, err := f.section(name, KindU64)
	if err != nil {
		return nil, err
	}
	if v, ok := castU64(b); ok {
		return v, nil
	}
	v := make([]uint64, len(b)/8)
	for i := range v {
		v[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return v, nil
}
