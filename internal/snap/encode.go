package snap

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc64"
	"io"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/store"
)

// Meta is the JSON metadata record of a snapshot ("meta" section). It
// carries everything needed to recompile the query and to check that a
// snapshot belongs to a given graph, plus display facts for inspection.
type Meta struct {
	// Query is the canonical printed form of the formula; Vars fixes the
	// output-column order. Loading re-parses and re-compiles them — the
	// compiler is deterministic, so the engine parts line up exactly.
	Query string   `json:"query"`
	Vars  []string `json:"vars"`
	// Canonical is the cache key of the serving layer: printed formula
	// plus variable order.
	Canonical string `json:"canonical"`

	K           int  `json:"k"`
	R           int  `json:"r"`
	LocalRadius int  `json:"rho"`
	Guarded     bool `json:"guarded"`

	GraphN      int `json:"graph_n"`
	GraphM      int `json:"graph_m"`
	GraphColors int `json:"graph_colors"`
	// GraphFingerprint is Fingerprint(g) in fixed-width hex; loaders use
	// it to refuse snapshots built from a different graph.
	GraphFingerprint string `json:"graph_fingerprint"`
}

// Fingerprint returns a CRC-64/ECMA fingerprint of the graph structure
// (vertex count, colors, adjacency, color sets). Two graphs with equal
// fingerprints are byte-identical under the snapshot encoding.
//
// The fingerprint is defined over the payload checksums of the "graph"
// and "graph.colors" sections rather than the raw encoding, so a loader
// can verify it from the checksums Parse has already computed without
// re-encoding the graph (see fingerprintOf).
func Fingerprint(g *graph.Graph) uint64 {
	gp := g.Parts()
	w := &i32w{}
	encodeGraph(w, gp)
	gh := crc64.New(crcTable)
	var buf [4]byte
	for _, x := range w.s {
		binary.LittleEndian.PutUint32(buf[:], uint32(x))
		gh.Write(buf[:]) //fod:errok hash.Hash.Write never returns an error
	}
	ch := crc64.New(crcTable)
	var wbuf [8]byte
	for _, x := range gp.ColorWords {
		binary.LittleEndian.PutUint64(wbuf[:], x)
		ch.Write(wbuf[:]) //fod:errok hash.Hash.Write never returns an error
	}
	return fingerprintOf(gh.Sum64(), ch.Sum64())
}

// fingerprintOf combines the payload checksums of the "graph" and
// "graph.colors" sections into the graph fingerprint.
func fingerprintOf(graphCRC, colorCRC uint64) uint64 {
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], graphCRC)
	binary.LittleEndian.PutUint64(b[8:], colorCRC)
	return crc64.Checksum(b[:], crcTable)
}

// FingerprintString renders a fingerprint the way Meta stores it.
func FingerprintString(fp uint64) string { return fmt.Sprintf("%016x", fp) }

// Write serializes the graph, metadata and engine parts as one snapshot.
// The graph facts of meta (GraphN, GraphM, GraphColors, GraphFingerprint)
// are filled in by Write; callers provide the query fields. The output is
// deterministic — identical inputs give byte-identical files.
func Write(out io.Writer, g *graph.Graph, meta Meta, parts core.EngineParts) (int64, error) {
	return WriteTraced(context.Background(), out, g, meta, parts, nil)
}

// WriteTraced is Write with encode instrumentation through reg (nil reg is
// plain Write): a "snap.encode" span with per-section children — enrolled
// in the request trace when ctx carries one — plus the counters
// "snap.encode.bytes" and "snap.encode.errors". This is the latency
// breakdown of the serve disk tier's write-back path.
func WriteTraced(ctx context.Context, out io.Writer, g *graph.Graph, meta Meta, parts core.EngineParts, reg *obs.Registry) (int64, error) {
	root := reg.StartSpan(ctx, "snap.encode")
	n, err := writeSections(out, g, meta, parts, root)
	root.End()
	reg.Counter("snap.encode.bytes").Add(n)
	if err != nil {
		reg.Counter("snap.encode.errors").Inc()
	}
	return n, err
}

func writeSections(out io.Writer, g *graph.Graph, meta Meta, parts core.EngineParts, root *obs.Span) (int64, error) {
	meta.GraphN = g.N()
	meta.GraphM = g.M()
	meta.GraphColors = g.NumColors()
	meta.GraphFingerprint = FingerprintString(Fingerprint(g))
	mb, err := json.Marshal(meta)
	if err != nil {
		return 0, fmt.Errorf("snap: encoding metadata: %w", err)
	}

	w := NewWriter()
	w.Bytes("meta", mb)

	sp := root.Child("graph")
	gp := g.Parts()
	gw := &i32w{}
	encodeGraph(gw, gp)
	w.I32("graph", gw.s)
	w.U64("graph.colors", gp.ColorWords)
	sp.End()

	sp = root.Child("cover")
	cw := &i32w{}
	encodeCover(cw, parts.Cover)
	w.I32("cover", cw.s)
	if parts.Cover.MemberStore != nil {
		encodeStore(w, "cover.member", parts.Cover.MemberStore)
	}
	if parts.Cover.KernelStore != nil {
		encodeStore(w, "cover.kernel", parts.Cover.KernelStore)
	}
	sp.End()

	sp = root.Child("dist")
	dw := &i32w{}
	var d8 []int8
	encodeDist(dw, &d8, parts.Dist)
	w.I32("dist", dw.s)
	w.I8("dist.d8", d8)
	sp.End()

	sp = root.Child("clauses")
	qw := &i32w{}
	encodeClauses(qw, parts)
	w.I32("clauses", qw.s)
	sp.End()

	sp = root.Child("flush")
	n, err := w.WriteTo(out)
	sp.End()
	return n, err
}

func encodeGraph(w *i32w, p graph.Parts) {
	w.putInt(p.N)
	w.putInt(p.NColors)
	w.putSlice(p.Off)
	w.putSlice(p.Adj)
	w.putSlice(p.ColorOff)
	w.putInt(len(p.ColorWords)) // cross-checked against the u64 section
}

// encodeCover writes the cover arrays; the optional Storing-Theorem
// structures go to their own sections, flagged here.
func encodeCover(w *i32w, p cover.Parts) {
	w.putInt(p.R)
	w.putInt(p.KernelP)
	w.putSlice(p.BagOff)
	w.putSlice(p.BagData)
	w.putSlice(p.Centers)
	w.putSlice(p.Assign)
	if p.KernelP >= 0 {
		w.putSlice(p.KernOff)
		w.putSlice(p.KernData)
	}
	flag := func(b bool) int32 {
		if b {
			return 1
		}
		return 0
	}
	w.put(flag(p.MemberStore != nil))
	w.put(flag(p.KernelStore != nil))
}

func encodeStore(w *Writer, prefix string, p *store.Parts) {
	mw := &i32w{}
	mw.putInt(p.N)
	mw.putInt(p.K)
	mw.putInt(p.D)
	mw.putInt(p.H)
	mw.putInt(p.Size)
	mw.putInt(len(p.Delta)) // cross-checked against the columns
	w.I32(prefix+".meta", mw.s)
	w.I8(prefix+".delta", p.Delta)
	w.I64(prefix+".r", p.R)
}

func encodeDist(w *i32w, d8 *[]int8, p dist.Parts) {
	w.putInt(p.R)
	w.putInt(p.Bags)
	w.putInt(p.MaxDepth)
	w.putInt(p.SmallLeaves)
	w.putInt(p.Fallbacks)
	w.putInt(p.TableCells)
	w.putInt(p.Work)
	encodeDistNode(w, d8, p.Root)
}

func encodeDistNode(w *i32w, d8 *[]int8, np *dist.NodeParts) {
	w.putInt(np.Kind)
	switch np.Kind {
	case dist.NodeSmall:
		w.putSlice(np.SmallOff)
		w.putSlice(np.SmallBall)
		*d8 = append(*d8, np.SmallD...) // length == len(SmallBall)
	case dist.NodeRecursive:
		encodeCover(w, np.Cover)
		w.putInt(len(np.Bags))
		for i := range np.Bags {
			bp := &np.Bags[i]
			w.put(bp.SX)
			w.putSlice(bp.DistS)
			encodeDistNode(w, d8, bp.Inner)
		}
	}
}

func encodeClauses(w *i32w, p core.EngineParts) {
	w.putInt(len(p.LiveIdx))
	for _, ci := range p.LiveIdx {
		w.putInt(ci)
	}
	w.putInt(len(p.Clauses))
	for _, comps := range p.Clauses {
		w.putInt(len(comps))
		for i := range comps {
			cp := &comps[i]
			w.putSlice(cp.Starter)
			if cp.Skip == nil {
				w.put(0)
				continue
			}
			w.put(1)
			w.putInt(cp.Skip.K)
			w.putSlice(cp.Skip.TableOff)
			w.putSlice(cp.Skip.TableRow)
		}
	}
}
