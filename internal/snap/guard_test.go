package snap_test

import (
	"bytes"
	"os"
	"runtime"
	"testing"
	"time"

	"repro"
)

// The snapshot guards run in verify.sh tier 3 under SNAP_GUARD=1 with
// -count=1, next to the LINT_GUARD allocation guards they extend: loading
// a snapshot must beat rebuilding by at least 10× on the fodbench E15
// configuration, and the restored index must keep the //fod:hotpath
// contract — zero allocations per enumeration step.

func snapGuardGate(t *testing.T) {
	t.Helper()
	if os.Getenv("SNAP_GUARD") == "" {
		t.Skip("set SNAP_GUARD=1 to run the snapshot performance guards")
	}
}

// buildE15 reproduces the fodbench E15 setup (Example 2 of the paper on
// the grid class) through the public API.
func buildE15(t testing.TB) (*repro.Graph, *repro.Index, time.Duration) {
	t.Helper()
	g := repro.Generate("grid", 2000, repro.GenOptions{Seed: 7, Colors: 1, ColorProb: 0.05})
	q := repro.MustParseQuery("dist(x,y) > 2 & C0(y)", "x", "y")
	start := time.Now()
	ix, err := repro.BuildIndex(g, q)
	if err != nil {
		t.Fatal(err)
	}
	return g, ix, time.Since(start)
}

// TestSnapshotLoadSpeedGuard pins the point of the snapshot tier: a load
// skips the whole pseudo-linear preprocessing, so it must be at least an
// order of magnitude faster than the build it replaces.
func TestSnapshotLoadSpeedGuard(t *testing.T) {
	snapGuardGate(t)
	_, ix, buildTime := buildE15(t)
	var buf bytes.Buffer
	if err := ix.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Best of three, so a stray scheduler hiccup on a loaded machine does
	// not fail the guard; the build is measured once, cold, as a server
	// would pay it. The explicit GC keeps the build's garbage from being
	// collected inside the timed loads.
	runtime.GC()
	loadTime := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		if _, err := repro.ReadIndexSnapshot(data); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < loadTime {
			loadTime = d
		}
	}
	t.Logf("E15: build %v, snapshot load %v (%.1fx), %d snapshot bytes",
		buildTime, loadTime, float64(buildTime)/float64(loadTime), len(data))
	if 10*loadTime > buildTime {
		t.Errorf("snapshot load %v is not ≥10x faster than build %v", loadTime, buildTime)
	}
}

// TestSnapshotLoadZeroAllocsGuard pins the restored index to the same
// zero-allocation enumeration hot path as a freshly built one — restoring
// from disk must not reintroduce per-answer allocations.
func TestSnapshotLoadZeroAllocsGuard(t *testing.T) {
	snapGuardGate(t)
	_, built, _ := buildE15(t)
	var buf bytes.Buffer
	if err := built.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	ix, err := repro.ReadIndexSnapshot(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	it := ix.Iterator()
	if !it.HasNext() {
		t.Fatal("restored E15 index produced no solutions")
	}
	zero := make([]int, ix.Arity())
	allocs := testing.AllocsPerRun(2000, func() {
		if _, ok := it.Next(); !ok {
			it.Seek(zero)
		}
	})
	if allocs != 0 {
		t.Errorf("restored Iterator.Next = %.2f allocs/op, want 0 (//fod:hotpath contract)", allocs)
	}

	probe := make([]int, ix.Arity())
	allocs = testing.AllocsPerRun(2000, func() {
		ix.Test(probe)
	})
	if allocs != 0 {
		t.Errorf("restored Index.Test = %.2f allocs/op, want 0 (//fod:hotpath contract)", allocs)
	}
}
