package snap_test

import (
	"bytes"
	"testing"

	"repro"
	"repro/internal/snap"
)

// FuzzSnapshotLoad throws arbitrary bytes at the full load path. The
// contract under test is the package's central safety promise: hostile
// input yields a typed error — never a panic, never an allocation sized
// from unverified lengths. When a mutated input still parses, the restored
// index is exercised briefly so decode-survivable mutations cannot smuggle
// in structures the answering hot path would trip over.
func FuzzSnapshotLoad(f *testing.F) {
	// Seed with real snapshots and near-valid mutants so the fuzzer starts
	// deep inside the decoder rather than bouncing off the magic check.
	g := repro.Generate("grid", 36, repro.GenOptions{Seed: 5, Colors: 2})
	ix, err := repro.BuildIndex(g, repro.MustParseQuery("dist(x,y) > 2 & C0(y)", "x", "y"))
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.WriteSnapshot(&buf); err != nil {
		f.Fatal(err)
	}
	valid := append([]byte(nil), buf.Bytes()...)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:40])
	for _, off := range []int{9, 13, 17, 25, 40, len(valid) / 2, len(valid) - 2} {
		mut := append([]byte(nil), valid...)
		mut[off] ^= 0x55
		f.Add(mut)
	}

	ux, err := repro.BuildIndex(
		repro.Generate("path", 20, repro.GenOptions{Seed: 2, Colors: 1}),
		repro.MustParseQuery("~(exists z (dist(x,z) <= 1 & C0(z)))", "x"))
	if err != nil {
		f.Fatal(err)
	}
	buf.Reset()
	if err := ux.WriteSnapshot(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), buf.Bytes()...))

	f.Add([]byte{})
	f.Add([]byte("FODSNAP1"))
	f.Add([]byte("FODSNAP2 not really a snapshot"))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := snap.Read(data)
		if err != nil {
			return // rejected cleanly — the desired outcome for garbage
		}
		if s.Graph == nil {
			t.Fatal("Read returned nil graph without error")
		}
		ix, err := repro.ReadIndexSnapshot(data)
		if err != nil {
			return // container fine, semantic restore refused — also fine
		}
		// A restored index must answer without panicking. Keep the probes
		// bounded: the fuzzer's job is crash-freedom, not correctness
		// (the differential round-trip test owns that).
		k := ix.Arity()
		n := s.Graph.N()
		if n == 0 {
			return
		}
		tup := make([]int, k)
		ix.Test(tup)
		ix.Next(tup)
		count := 0
		ix.Enumerate(func([]int) bool {
			count++
			return count < 16
		})
	})
}
