package snap

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/skip"
	"repro/internal/store"
)

// maxDistDepth bounds the decoder recursion over the dist tree; it
// matches the cap dist.FromParts enforces.
const maxDistDepth = 64

// Snapshot is a fully decoded snapshot: the graph, the metadata, and the
// engine parts ready for core.RestoreEngine once the query has been
// recompiled from Meta.Query/Meta.Vars.
type Snapshot struct {
	Graph *graph.Graph
	Meta  Meta
	Parts core.EngineParts
}

// ReadMeta parses only the metadata record of a snapshot file — enough
// for inspection and cache-key checks without decoding the index.
func ReadMeta(f *File) (Meta, error) {
	var m Meta
	b, err := f.BytesSection("meta")
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(b, &m); err != nil {
		return m, fmt.Errorf("%w: metadata record: %v", ErrCorrupt, err)
	}
	return m, nil
}

// Read decodes a snapshot from its raw bytes. All checksums are verified,
// every structural invariant the answering phase relies on is validated,
// and no allocation is sized from unverified input — corrupted or hostile
// bytes yield a typed error, never a panic or OOM.
func Read(data []byte) (*Snapshot, error) {
	return ReadTraced(context.Background(), data, nil)
}

// ReadTraced is Read with decode instrumentation through reg (nil reg is
// plain Read): a "snap.decode" span with one child per section group
// (parse, graph, cover, dist, clauses) — enrolled in the request trace
// when ctx carries one — plus the counters "snap.decode.bytes" and
// "snap.decode.errors". This is the latency breakdown of the serve disk
// tier's load path.
func ReadTraced(ctx context.Context, data []byte, reg *obs.Registry) (*Snapshot, error) {
	root := reg.StartSpan(ctx, "snap.decode")
	s, err := readSections(data, root)
	root.End()
	reg.Counter("snap.decode.bytes").Add(int64(len(data)))
	if err != nil {
		reg.Counter("snap.decode.errors").Inc()
		return nil, err
	}
	return s, nil
}

func readSections(data []byte, root *obs.Span) (*Snapshot, error) {
	sp := root.Child("parse")
	f, err := Parse(data)
	sp.End()
	if err != nil {
		return nil, err
	}
	meta, err := ReadMeta(f)
	if err != nil {
		return nil, err
	}
	sp = root.Child("graph")
	g, err := readGraph(f)
	sp.End()
	if err != nil {
		return nil, err
	}
	// The fingerprint is defined over the section payload checksums, which
	// Parse has already computed and verified — no re-encoding needed.
	gcrc, _ := f.SectionCRC("graph")
	ccrc, _ := f.SectionCRC("graph.colors")
	if fp := FingerprintString(fingerprintOf(gcrc, ccrc)); fp != meta.GraphFingerprint {
		return nil, fmt.Errorf("%w: graph fingerprint %s does not match metadata %s", ErrCorrupt, fp, meta.GraphFingerprint)
	}
	s := &Snapshot{Graph: g, Meta: meta}

	sp = root.Child("cover")
	cp, err := readCover(f)
	sp.End()
	if err != nil {
		return nil, err
	}
	s.Parts.Cover = cp

	sp = root.Child("dist")
	dp, err := readDist(f)
	sp.End()
	if err != nil {
		return nil, err
	}
	s.Parts.Dist = dp

	sp = root.Child("clauses")
	err = readClauses(f, &s.Parts)
	sp.End()
	if err != nil {
		return nil, err
	}
	return s, nil
}

// ReadFile is Read over the contents of path.
func ReadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Read(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

func readGraph(f *File) (*graph.Graph, error) {
	s, err := f.I32Section("graph")
	if err != nil {
		return nil, err
	}
	r := &i32r{name: "graph", s: s}
	var p graph.Parts
	if p.N, err = r.getInt(); err != nil {
		return nil, err
	}
	if p.NColors, err = r.getInt(); err != nil {
		return nil, err
	}
	if p.Off, err = r.getSlice(); err != nil {
		return nil, err
	}
	if p.Adj, err = r.getSlice(); err != nil {
		return nil, err
	}
	if p.ColorOff, err = r.getSlice(); err != nil {
		return nil, err
	}
	nwords, err := r.getInt()
	if err != nil {
		return nil, err
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	if p.ColorWords, err = f.U64Section("graph.colors"); err != nil {
		return nil, err
	}
	if len(p.ColorWords) != nwords {
		return nil, fmt.Errorf("%w: color section has %d words, graph section claims %d", ErrCorrupt, len(p.ColorWords), nwords)
	}
	g, err := graph.FromParts(p)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return g, nil
}

// decodeCover is the inverse of encodeCover; store payloads are resolved
// from their own sections by the caller using the returned flags.
func decodeCover(r *i32r) (p cover.Parts, hasMember, hasKernel bool, err error) {
	if p.R, err = r.getInt(); err != nil {
		return
	}
	if p.KernelP, err = r.getInt(); err != nil {
		return
	}
	if p.BagOff, err = r.getSlice(); err != nil {
		return
	}
	if p.BagData, err = r.getSlice(); err != nil {
		return
	}
	if p.Centers, err = r.getSlice(); err != nil {
		return
	}
	if p.Assign, err = r.getSlice(); err != nil {
		return
	}
	if p.KernelP >= 0 {
		if p.KernOff, err = r.getSlice(); err != nil {
			return
		}
		if p.KernData, err = r.getSlice(); err != nil {
			return
		}
	}
	var fm, fk int32
	if fm, err = r.get(); err != nil {
		return
	}
	if fk, err = r.get(); err != nil {
		return
	}
	return p, fm != 0, fk != 0, nil
}

func readCover(f *File) (cover.Parts, error) {
	s, err := f.I32Section("cover")
	if err != nil {
		return cover.Parts{}, err
	}
	r := &i32r{name: "cover", s: s}
	p, hasMember, hasKernel, err := decodeCover(r)
	if err != nil {
		return cover.Parts{}, err
	}
	if err := r.finish(); err != nil {
		return cover.Parts{}, err
	}
	if hasMember {
		if p.MemberStore, err = readStore(f, "cover.member"); err != nil {
			return cover.Parts{}, err
		}
	}
	if hasKernel {
		if p.KernelStore, err = readStore(f, "cover.kernel"); err != nil {
			return cover.Parts{}, err
		}
	}
	return p, nil
}

func readStore(f *File, prefix string) (*store.Parts, error) {
	s, err := f.I32Section(prefix + ".meta")
	if err != nil {
		return nil, err
	}
	r := &i32r{name: prefix + ".meta", s: s}
	var p store.Parts
	if p.N, err = r.getInt(); err != nil {
		return nil, err
	}
	if p.K, err = r.getInt(); err != nil {
		return nil, err
	}
	if p.D, err = r.getInt(); err != nil {
		return nil, err
	}
	if p.H, err = r.getInt(); err != nil {
		return nil, err
	}
	if p.Size, err = r.getInt(); err != nil {
		return nil, err
	}
	nreg, err := r.getInt()
	if err != nil {
		return nil, err
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	if p.Delta, err = f.I8Section(prefix + ".delta"); err != nil {
		return nil, err
	}
	if p.R, err = f.I64Section(prefix + ".r"); err != nil {
		return nil, err
	}
	if len(p.Delta) != nreg || len(p.R) != nreg {
		return nil, fmt.Errorf("%w: store %q columns have %d/%d registers, meta claims %d",
			ErrCorrupt, prefix, len(p.Delta), len(p.R), nreg)
	}
	return &p, nil
}

func readDist(f *File) (dist.Parts, error) {
	s, err := f.I32Section("dist")
	if err != nil {
		return dist.Parts{}, err
	}
	d8col, err := f.I8Section("dist.d8")
	if err != nil {
		return dist.Parts{}, err
	}
	r := &i32r{name: "dist", s: s}
	d8 := &i8r{name: "dist.d8", s: d8col}
	var p dist.Parts
	for _, dst := range []*int{&p.R, &p.Bags, &p.MaxDepth, &p.SmallLeaves, &p.Fallbacks, &p.TableCells, &p.Work} {
		if *dst, err = r.getInt(); err != nil {
			return dist.Parts{}, err
		}
	}
	if p.Root, err = decodeDistNode(r, d8, 0); err != nil {
		return dist.Parts{}, err
	}
	if err := r.finish(); err != nil {
		return dist.Parts{}, err
	}
	if err := d8.finish(); err != nil {
		return dist.Parts{}, err
	}
	return p, nil
}

func decodeDistNode(r *i32r, d8 *i8r, depth int) (*dist.NodeParts, error) {
	if depth > maxDistDepth {
		return nil, fmt.Errorf("%w: dist recursion deeper than %d", ErrCorrupt, maxDistDepth)
	}
	kind, err := r.getInt()
	if err != nil {
		return nil, err
	}
	np := &dist.NodeParts{Kind: kind}
	switch kind {
	case dist.NodeEdgeless, dist.NodeFallback:
	case dist.NodeSmall:
		if np.SmallOff, err = r.getSlice(); err != nil {
			return nil, err
		}
		if np.SmallBall, err = r.getSlice(); err != nil {
			return nil, err
		}
		if np.SmallD, err = d8.take(len(np.SmallBall)); err != nil {
			return nil, err
		}
	case dist.NodeRecursive:
		cp, hasMember, hasKernel, err := decodeCover(r)
		if err != nil {
			return nil, err
		}
		if hasMember || hasKernel {
			return nil, fmt.Errorf("%w: dist-level cover carries store payloads", ErrCorrupt)
		}
		np.Cover = cp
		nbags, err := r.getInt()
		if err != nil {
			return nil, err
		}
		if nbags < 0 || nbags > len(r.s)-r.pos {
			return nil, fmt.Errorf("%w: dist node claims %d bags with %d words left", ErrCorrupt, nbags, len(r.s)-r.pos)
		}
		np.Bags = make([]dist.BagParts, nbags)
		for i := range np.Bags {
			bp := &np.Bags[i]
			var sx int32
			if sx, err = r.get(); err != nil {
				return nil, err
			}
			bp.SX = sx
			if bp.DistS, err = r.getSlice(); err != nil {
				return nil, err
			}
			if bp.Inner, err = decodeDistNode(r, d8, depth+1); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("%w: unknown dist node kind %d", ErrCorrupt, kind)
	}
	return np, nil
}

func readClauses(f *File, p *core.EngineParts) error {
	s, err := f.I32Section("clauses")
	if err != nil {
		return err
	}
	r := &i32r{name: "clauses", s: s}
	nlive, err := r.getInt()
	if err != nil {
		return err
	}
	if nlive < 0 || nlive > len(r.s)-r.pos {
		return fmt.Errorf("%w: clauses section claims %d live clauses", ErrCorrupt, nlive)
	}
	p.LiveIdx = make([]int, nlive)
	for i := range p.LiveIdx {
		if p.LiveIdx[i], err = r.getInt(); err != nil {
			return err
		}
	}
	nclauses, err := r.getInt()
	if err != nil {
		return err
	}
	if nclauses != nlive {
		return fmt.Errorf("%w: %d clause payloads for %d live clauses", ErrCorrupt, nclauses, nlive)
	}
	p.Clauses = make([][]core.CompParts, nclauses)
	for ci := range p.Clauses {
		ncomps, err := r.getInt()
		if err != nil {
			return err
		}
		if ncomps < 0 || ncomps > len(r.s)-r.pos {
			return fmt.Errorf("%w: clause %d claims %d components", ErrCorrupt, ci, ncomps)
		}
		comps := make([]core.CompParts, ncomps)
		for i := range comps {
			cp := &comps[i]
			if cp.Starter, err = r.getSlice(); err != nil {
				return err
			}
			hasSkip, err := r.get()
			if err != nil {
				return err
			}
			if hasSkip != 0 {
				sp := &skip.Parts{}
				if sp.K, err = r.getInt(); err != nil {
					return err
				}
				if sp.TableOff, err = r.getSlice(); err != nil {
					return err
				}
				if sp.TableRow, err = r.getSlice(); err != nil {
					return err
				}
				cp.Skip = sp
			}
		}
		p.Clauses[ci] = comps
	}
	return r.finish()
}
