package snap

import (
	"encoding/binary"
	"unsafe"
)

// The typed-section accessors normally decode element by element through
// encoding/binary, which costs a full pass plus an allocation per
// section. On a little-endian host the on-disk representation is already
// the in-memory representation, so a section can be reinterpreted in
// place — this is the "near-zero decoding" the format exists for: loading
// becomes one sequential read, a checksum pass, and pointer casts.
//
// The fast path requires the section start to be aligned for the element
// type. Sections are laid out 8-aligned relative to the start of the
// file, and Go heap allocations (os.ReadFile, bytes.Buffer) are at least
// 8-aligned, so in practice it always applies; a misaligned or big-endian
// host silently falls back to the copying decoder, with identical
// results.
//
// Zero-copy views alias the input: the byte slice handed to Parse/Read
// must not be modified while the snapshot or a restored index is in use.
// Every structure restored from a snapshot treats its arrays as
// immutable, so this is an external contract only.

// hostLittleEndian reports whether the host memory layout matches the
// file's little-endian encoding.
var hostLittleEndian = binary.NativeEndian.Uint16([]byte{0x12, 0x34}) == 0x3412

// alignedTo reports whether b starts on an align-byte boundary.
func alignedTo(b []byte, align uintptr) bool {
	return uintptr(unsafe.Pointer(unsafe.SliceData(b)))%align == 0
}

func castI8(b []byte) []int8 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int8)(unsafe.Pointer(unsafe.SliceData(b))), len(b))
}

func castI32(b []byte) ([]int32, bool) {
	if !hostLittleEndian || !alignedTo(b, 4) {
		return nil, false
	}
	if len(b) == 0 {
		return nil, true
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/4), true
}

func castI64(b []byte) ([]int64, bool) {
	if !hostLittleEndian || !alignedTo(b, 8) {
		return nil, false
	}
	if len(b) == 0 {
		return nil, true
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/8), true
}

func castU64(b []byte) ([]uint64, bool) {
	if !hostLittleEndian || !alignedTo(b, 8) {
		return nil, false
	}
	if len(b) == 0 {
		return nil, true
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/8), true
}
