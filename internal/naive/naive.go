// Package naive provides the baseline algorithms the experiments compare
// against: direct FO⁺ evaluation over all tuples (materialize-then-
// enumerate) and per-query BFS distance testing. These are the "obviously
// correct" counterparts of the paper's index structures and double as
// correctness oracles in the tests.
package naive

import (
	"repro/internal/core"
	"repro/internal/fo"
	"repro/internal/graph"
)

// Solutions materializes φ(G) for the FO⁺ query φ with free variables vars,
// in lexicographic order, by evaluating every tuple. Cost Θ(n^k · eval).
func Solutions(g *graph.Graph, phi fo.Formula, vars []fo.Var) [][]graph.V {
	ev := fo.NewEvaluator(g)
	var out [][]graph.V
	tuple := make([]graph.V, len(vars))
	env := fo.Env{}
	var rec func(i int)
	rec = func(i int) {
		if i == len(vars) {
			if ev.Eval(phi, env) {
				out = append(out, append([]graph.V(nil), tuple...))
			}
			return
		}
		for v := 0; v < g.N(); v++ {
			tuple[i] = v
			env[vars[i]] = v
			rec(i + 1)
		}
		delete(env, vars[i])
	}
	rec(0)
	return out
}

// SolutionsLocal materializes the result of a LocalQuery using the
// reference semantics (core.EvalReference) on every tuple.
func SolutionsLocal(g *graph.Graph, q *core.LocalQuery) [][]graph.V {
	var out [][]graph.V
	tuple := make([]graph.V, q.K)
	var rec func(i int)
	rec = func(i int) {
		if i == q.K {
			if core.EvalReference(g, q, tuple) {
				out = append(out, append([]graph.V(nil), tuple...))
			}
			return
		}
		for v := 0; v < g.N(); v++ {
			tuple[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

// Enumerator streams the solutions of a LocalQuery in lexicographic order
// without materializing them first — the honest constant-space baseline
// whose *delay* grows with the gaps between solutions (the quantity the
// paper's index makes constant).
type Enumerator struct {
	g   *graph.Graph
	q   *core.LocalQuery
	cur []graph.V
	eof bool
}

// NewEnumerator returns a streaming naive enumerator.
func NewEnumerator(g *graph.Graph, q *core.LocalQuery) *Enumerator {
	return &Enumerator{g: g, q: q, cur: make([]graph.V, q.K)}
}

// Next returns the next solution, or ok=false at exhaustion.
func (e *Enumerator) Next() ([]graph.V, bool) {
	if e.eof || e.g.N() == 0 {
		return nil, false
	}
	for {
		if core.EvalReference(e.g, e.q, e.cur) {
			out := append([]graph.V(nil), e.cur...)
			if !e.advance() {
				e.eof = true
			}
			return out, true
		}
		if !e.advance() {
			e.eof = true
			return nil, false
		}
	}
}

func (e *Enumerator) advance() bool {
	for i := e.q.K - 1; i >= 0; i-- {
		if e.cur[i]+1 < e.g.N() {
			e.cur[i]++
			return true
		}
		e.cur[i] = 0
	}
	return false
}

// TestFO evaluates a single tuple against an FO⁺ formula directly — the
// baseline for Corollary 2.4.
func TestFO(g *graph.Graph, phi fo.Formula, vars []fo.Var, a []graph.V) bool {
	return fo.NewEvaluator(g).EvalTuple(phi, vars, a)
}
