package naive

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fo"
	"repro/internal/gen"
)

func TestSolutionsLexOrder(t *testing.T) {
	g := gen.Generate(gen.Path, 30, gen.Options{Seed: 1, Colors: 1, ColorProb: 0.5})
	phi := fo.MustParse("E(x,y) & C0(x)")
	sols := Solutions(g, phi, []fo.Var{"x", "y"})
	if len(sols) == 0 {
		t.Fatal("expected solutions")
	}
	ev := fo.NewEvaluator(g)
	for i, s := range sols {
		if !ev.EvalTuple(phi, []fo.Var{"x", "y"}, s) {
			t.Fatalf("non-solution %v", s)
		}
		if i > 0 {
			prev := sols[i-1]
			if prev[0] > s[0] || (prev[0] == s[0] && prev[1] >= s[1]) {
				t.Fatalf("order violation: %v before %v", prev, s)
			}
		}
	}
}

func TestEnumeratorMatchesMaterialization(t *testing.T) {
	g := gen.Generate(gen.Grid, 49, gen.Options{Seed: 2, Colors: 1})
	lq, err := core.Compile(fo.MustParse("dist(x,y) > 2 & C0(y)"),
		[]fo.Var{"x", "y"}, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := SolutionsLocal(g, lq)
	e := NewEnumerator(g, lq)
	var got [][]int
	for {
		s, ok := e.Next()
		if !ok {
			break
		}
		got = append(got, s)
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d, materialized %d", len(got), len(want))
	}
	for i := range got {
		if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
			t.Fatalf("position %d: %v vs %v", i, got[i], want[i])
		}
	}
	// Exhausted enumerator keeps returning not-ok.
	if _, ok := e.Next(); ok {
		t.Fatal("enumerator resurrected after exhaustion")
	}
}

func TestTestFO(t *testing.T) {
	g := gen.Generate(gen.Cycle, 10, gen.Options{})
	if !TestFO(g, fo.MustParse("E(x,y)"), []fo.Var{"x", "y"}, []int{0, 1}) {
		t.Fatal("edge (0,1) should hold on the cycle")
	}
	if TestFO(g, fo.MustParse("E(x,y)"), []fo.Var{"x", "y"}, []int{0, 5}) {
		t.Fatal("(0,5) is not an edge")
	}
}

func TestEnumeratorEmptyGraph(t *testing.T) {
	lq, err := core.Compile(fo.MustParse("C0(x)"), []fo.Var{"x"}, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g := gen.Generate(gen.Path, 1, gen.Options{})
	e := NewEnumerator(g, lq)
	if _, ok := e.Next(); ok {
		t.Fatal("uncolored single vertex has no C0 solutions")
	}
}
