// Package gen provides deterministic generators for the graph classes used
// in the experiments. The nowhere dense classes (paths, trees, grids,
// bounded-degree graphs, …) instantiate the classes the paper's theorems
// apply to; the dense controls (cliques, dense random graphs, 1-subdivided
// cliques taken as a family) are *somewhere dense* and serve as negative
// controls for the sparsity and splitter-game experiments.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// Class names a generator.
type Class string

// Nowhere dense classes.
const (
	Path          Class = "path"         // a simple path (treewidth 1)
	Cycle         Class = "cycle"        // a simple cycle (treewidth 2)
	Star          Class = "star"         // one center, n-1 leaves
	Caterpillar   Class = "caterpillar"  // spine path with pendant leaves
	BalancedTree  Class = "btree"        // balanced tree with fixed branching
	RandomTree    Class = "rtree"        // uniform random recursive tree
	Grid          Class = "grid"         // √n×√n planar grid
	KingGrid      Class = "kinggrid"     // grid + diagonals (degree ≤ 8)
	BoundedDegree Class = "bdeg"         // random graph with max degree bound
	SparseRandom  Class = "sparserandom" // G(n, m) with m = avgdeg·n/2, avgdeg O(1)
	PartialKTree  Class = "ktree"        // random partial k-tree (treewidth ≤ k)
	Outerplanar   Class = "outerplanar"  // cycle with non-crossing chords
)

// Somewhere dense controls.
const (
	Clique           Class = "clique"    // K_n
	DenseRandom      Class = "dense"     // G(n, m) with m ≈ n^{1.5}/2
	SubdividedClique Class = "subclique" // 1-subdivision of K_k with k ≈ √n
)

// Classes lists all generator names, nowhere dense first.
var Classes = []Class{
	Path, Cycle, Star, Caterpillar, BalancedTree, RandomTree, Grid,
	KingGrid, BoundedDegree, SparseRandom, PartialKTree, Outerplanar,
	Clique, DenseRandom, SubdividedClique,
}

// NowhereDense reports whether the class is one of the nowhere dense
// generators (as opposed to a dense control).
func NowhereDense(c Class) bool {
	switch c {
	case Clique, DenseRandom, SubdividedClique:
		return false
	}
	return true
}

// Options tunes a generator. The zero value is usable: it yields an
// uncolored graph with the documented per-class defaults.
type Options struct {
	Seed      int64   // PRNG seed (generators are deterministic per seed)
	Colors    int     // number of colors in the schema (0 = uncolored)
	ColorProb float64 // probability that a vertex carries each color (default 0.3)
	Branching int     // BalancedTree branching factor (default 2)
	Degree    int     // BoundedDegree max degree (default 4)
	AvgDeg    float64 // SparseRandom average degree (default 3)
	Treewidth int     // PartialKTree width parameter (default 3)
}

func (o Options) withDefaults() Options {
	if o.ColorProb == 0 {
		o.ColorProb = 0.3
	}
	if o.Branching == 0 {
		o.Branching = 2
	}
	if o.Degree == 0 {
		o.Degree = 4
	}
	if o.AvgDeg == 0 {
		o.AvgDeg = 3
	}
	if o.Treewidth == 0 {
		o.Treewidth = 3
	}
	return o
}

// Generate builds a graph of the given class with (approximately, for grid
// classes exactly ⌊√n⌋², for SubdividedClique the nearest k(k+1)/2 shape)
// n vertices.
func Generate(class Class, n int, opt Options) *graph.Graph {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed))
	var b *graph.Builder
	switch class {
	case Path:
		b = graph.NewBuilder(n, opt.Colors)
		for v := 0; v+1 < n; v++ {
			b.AddEdge(v, v+1)
		}
	case Cycle:
		b = graph.NewBuilder(n, opt.Colors)
		for v := 0; v+1 < n; v++ {
			b.AddEdge(v, v+1)
		}
		if n > 2 {
			b.AddEdge(n-1, 0)
		}
	case Star:
		b = graph.NewBuilder(n, opt.Colors)
		for v := 1; v < n; v++ {
			b.AddEdge(0, v)
		}
	case Caterpillar:
		b = graph.NewBuilder(n, opt.Colors)
		spine := n / 2
		for v := 0; v+1 < spine; v++ {
			b.AddEdge(v, v+1)
		}
		for v := spine; v < n; v++ {
			b.AddEdge(v, (v-spine)%max(spine, 1))
		}
	case BalancedTree:
		b = graph.NewBuilder(n, opt.Colors)
		for v := 1; v < n; v++ {
			b.AddEdge(v, (v-1)/opt.Branching)
		}
	case RandomTree:
		b = graph.NewBuilder(n, opt.Colors)
		for v := 1; v < n; v++ {
			b.AddEdge(v, rng.Intn(v))
		}
	case Grid:
		side := intSqrt(n)
		b = graph.NewBuilder(side*side, opt.Colors)
		gridEdges(b, side, false)
	case KingGrid:
		side := intSqrt(n)
		b = graph.NewBuilder(side*side, opt.Colors)
		gridEdges(b, side, true)
	case BoundedDegree:
		b = graph.NewBuilder(n, opt.Colors)
		boundedDegreeEdges(b, n, opt.Degree, rng)
	case SparseRandom:
		b = graph.NewBuilder(n, opt.Colors)
		m := int(opt.AvgDeg * float64(n) / 2)
		randomEdges(b, n, m, rng)
	case PartialKTree:
		// Build a k-tree (each new vertex joined to a random existing
		// k-clique), then keep each edge with probability 0.6: a random
		// partial k-tree, treewidth ≤ k.
		k := opt.Treewidth
		if k >= n {
			k = n - 1
		}
		b = graph.NewBuilder(n, opt.Colors)
		cliques := [][]int{}
		base := make([]int, 0, k)
		for v := 0; v < k && v < n; v++ {
			for u := 0; u < v; u++ {
				if rng.Float64() < 0.6 {
					b.AddEdge(u, v)
				}
			}
			base = append(base, v)
		}
		if len(base) == k {
			cliques = append(cliques, base)
		}
		for v := k; v < n; v++ {
			var parent []int
			if len(cliques) == 0 {
				parent = base
			} else {
				parent = cliques[rng.Intn(len(cliques))]
			}
			for _, u := range parent {
				if rng.Float64() < 0.6 {
					b.AddEdge(u, v)
				}
			}
			// New k-cliques: parent with one vertex swapped for v.
			for i := range parent {
				nc := append([]int(nil), parent...)
				nc[i] = v
				cliques = append(cliques, nc)
				if len(cliques) > 4*n {
					cliques = cliques[len(cliques)-2*n:]
				}
				break // keep one per vertex to bound memory
			}
		}
	case Outerplanar:
		// A cycle plus random non-crossing chords (a maximal outerplanar
		// triangulation thinned to 70%).
		b = graph.NewBuilder(n, opt.Colors)
		for v := 0; v+1 < n; v++ {
			b.AddEdge(v, v+1)
		}
		if n > 2 {
			b.AddEdge(n-1, 0)
		}
		var tri func(lo, hi int)
		tri = func(lo, hi int) {
			if hi-lo < 2 {
				return
			}
			mid := lo + 1 + rng.Intn(hi-lo-1)
			if mid-lo > 1 && rng.Float64() < 0.7 {
				b.AddEdge(lo, mid)
			}
			if hi-mid > 1 && rng.Float64() < 0.7 {
				b.AddEdge(mid, hi)
			}
			tri(lo, mid)
			tri(mid, hi)
		}
		if n > 3 {
			tri(0, n-1)
		}
	case Clique:
		b = graph.NewBuilder(n, opt.Colors)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				b.AddEdge(u, v)
			}
		}
	case DenseRandom:
		b = graph.NewBuilder(n, opt.Colors)
		m := int(math.Pow(float64(n), 1.5) / 2)
		randomEdges(b, n, m, rng)
	case SubdividedClique:
		// 1-subdivision of K_k: k branch vertices plus one subdivision
		// vertex per pair; total k + k(k-1)/2 ≈ n for k ≈ √(2n).
		k := 2
		for k+k*(k-1)/2 < n {
			k++
		}
		total := k + k*(k-1)/2
		b = graph.NewBuilder(total, opt.Colors)
		mid := k
		for u := 0; u < k; u++ {
			for v := u + 1; v < k; v++ {
				b.AddEdge(u, mid)
				b.AddEdge(mid, v)
				mid++
			}
		}
	default:
		panic(fmt.Sprintf("gen: unknown class %q", class))
	}
	colorize(b, rng, opt)
	return b.Build()
}

func gridEdges(b *graph.Builder, side int, diagonals bool) {
	id := func(x, y int) int { return y*side + x }
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			if x+1 < side {
				b.AddEdge(id(x, y), id(x+1, y))
			}
			if y+1 < side {
				b.AddEdge(id(x, y), id(x, y+1))
			}
			if diagonals && x+1 < side && y+1 < side {
				b.AddEdge(id(x, y), id(x+1, y+1))
				b.AddEdge(id(x+1, y), id(x, y+1))
			}
		}
	}
}

func boundedDegreeEdges(b *graph.Builder, n, maxDeg int, rng *rand.Rand) {
	deg := make([]int, n)
	attempts := maxDeg * n
	for i := 0; i < attempts; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || deg[u] >= maxDeg || deg[v] >= maxDeg {
			continue
		}
		b.AddEdge(u, v)
		deg[u]++
		deg[v]++
	}
}

func randomEdges(b *graph.Builder, n, m int, rng *rand.Rand) {
	if n < 2 {
		return
	}
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		b.AddEdge(u, v)
	}
}

func colorize(b *graph.Builder, rng *rand.Rand, opt Options) {
	if opt.Colors == 0 {
		return
	}
	for v := 0; v < b.N(); v++ {
		for c := 0; c < opt.Colors; c++ {
			if rng.Float64() < opt.ColorProb {
				b.SetColor(v, c)
			}
		}
	}
}

func intSqrt(n int) int {
	s := int(math.Sqrt(float64(n)))
	for (s+1)*(s+1) <= n {
		s++
	}
	for s*s > n {
		s--
	}
	if s < 1 {
		s = 1
	}
	return s
}
