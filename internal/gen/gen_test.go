package gen

import (
	"testing"

	"repro/internal/graph"
)

func TestGenerateShapes(t *testing.T) {
	n := 200
	cases := []struct {
		class Class
		check func(t *testing.T, g *graph.Graph)
	}{
		{Path, func(t *testing.T, g *graph.Graph) {
			if g.M() != n-1 {
				t.Fatalf("path edges = %d", g.M())
			}
			if g.Degree(0) != 1 || g.Degree(n/2) != 2 {
				t.Fatal("path degrees wrong")
			}
		}},
		{Cycle, func(t *testing.T, g *graph.Graph) {
			if g.M() != n {
				t.Fatalf("cycle edges = %d", g.M())
			}
			for v := 0; v < g.N(); v++ {
				if g.Degree(v) != 2 {
					t.Fatalf("cycle degree(%d) = %d", v, g.Degree(v))
				}
			}
		}},
		{Star, func(t *testing.T, g *graph.Graph) {
			if g.Degree(0) != n-1 {
				t.Fatal("star hub degree wrong")
			}
		}},
		{BalancedTree, func(t *testing.T, g *graph.Graph) {
			if g.M() != n-1 {
				t.Fatal("tree edge count")
			}
			if len(graph.ConnectedComponents(g)) != 1 {
				t.Fatal("tree disconnected")
			}
		}},
		{RandomTree, func(t *testing.T, g *graph.Graph) {
			if g.M() != n-1 || len(graph.ConnectedComponents(g)) != 1 {
				t.Fatal("random tree not a tree")
			}
		}},
		{Grid, func(t *testing.T, g *graph.Graph) {
			side := 14 // ⌊√200⌋
			if g.N() != side*side {
				t.Fatalf("grid n = %d", g.N())
			}
			if g.MaxDegree() != 4 {
				t.Fatalf("grid max degree = %d", g.MaxDegree())
			}
		}},
		{KingGrid, func(t *testing.T, g *graph.Graph) {
			if g.MaxDegree() != 8 {
				t.Fatalf("king grid max degree = %d", g.MaxDegree())
			}
		}},
		{BoundedDegree, func(t *testing.T, g *graph.Graph) {
			if g.MaxDegree() > 4 {
				t.Fatalf("bounded degree exceeded: %d", g.MaxDegree())
			}
		}},
		{PartialKTree, func(t *testing.T, g *graph.Graph) {
			// Treewidth ≤ 3 implies at most 3n − 6 edges.
			if g.M() > 3*g.N() {
				t.Fatalf("partial 3-tree too dense: %d edges", g.M())
			}
		}},
		{Outerplanar, func(t *testing.T, g *graph.Graph) {
			// Outerplanar graphs have at most 2n − 3 edges.
			if g.M() > 2*g.N()-3 {
				t.Fatalf("outerplanar bound violated: %d edges on %d vertices", g.M(), g.N())
			}
		}},
		{Clique, func(t *testing.T, g *graph.Graph) {
			if g.M() != n*(n-1)/2 {
				t.Fatal("clique edge count")
			}
		}},
		{SubdividedClique, func(t *testing.T, g *graph.Graph) {
			// Branch vertices have degree k−1, subdivision vertices 2.
			deg2 := 0
			for v := 0; v < g.N(); v++ {
				if g.Degree(v) == 2 {
					deg2++
				}
			}
			if deg2 == 0 {
				t.Fatal("no subdivision vertices")
			}
		}},
	}
	for _, c := range cases {
		t.Run(string(c.class), func(t *testing.T) {
			c.check(t, Generate(c.class, n, Options{Seed: 5}))
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(BoundedDegree, 150, Options{Seed: 9, Colors: 2})
	b := Generate(BoundedDegree, 150, Options{Seed: 9, Colors: 2})
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatal("same seed, different graphs")
	}
	for v := 0; v < a.N(); v++ {
		if a.Degree(v) != b.Degree(v) || a.HasColor(v, 0) != b.HasColor(v, 0) {
			t.Fatalf("vertex %d differs", v)
		}
	}
	c := Generate(BoundedDegree, 150, Options{Seed: 10})
	if a.M() == c.M() && a.MaxDegree() == c.MaxDegree() {
		// Extremely unlikely to match on both; tolerate but check edges.
		same := true
		for v := 0; v < a.N() && same; v++ {
			if a.Degree(v) != c.Degree(v) {
				same = false
			}
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestGenerateColors(t *testing.T) {
	g := Generate(Grid, 400, Options{Seed: 2, Colors: 3, ColorProb: 0.5})
	counts := make([]int, 3)
	for v := 0; v < g.N(); v++ {
		for c := 0; c < 3; c++ {
			if g.HasColor(v, c) {
				counts[c]++
			}
		}
	}
	for c, cnt := range counts {
		if cnt < g.N()/4 || cnt > 3*g.N()/4 {
			t.Fatalf("color %d count %d implausible for p=0.5", c, cnt)
		}
	}
}

func TestNowhereDenseFlag(t *testing.T) {
	for _, c := range Classes {
		nd := NowhereDense(c)
		switch c {
		case Clique, DenseRandom, SubdividedClique:
			if nd {
				t.Errorf("%s misclassified as nowhere dense", c)
			}
		default:
			if !nd {
				t.Errorf("%s misclassified as dense", c)
			}
		}
	}
}

func TestGenerateUnknownClassPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Generate("nope", 10, Options{})
}

func TestGenerateTinySizes(t *testing.T) {
	for _, c := range Classes {
		for _, n := range []int{1, 2, 3} {
			g := Generate(c, n, Options{Seed: 1})
			if g.N() < 1 {
				t.Fatalf("%s n=%d: empty graph", c, n)
			}
		}
	}
}
