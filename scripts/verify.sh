#!/usr/bin/env bash
# Verification tiers (see README "Testing"):
#   tier 1 — build + full test suite (the CI gate; ROADMAP "Tier-1 verify")
#   tier 2 — static analysis + race-detector pass: go vet (plus an
#            explicit -copylocks -loopclosure run), the repo's own fodlint
#            analyzers (see README "Static analysis"), and the
#            concurrency-sensitive suite under -race in -short mode; the
#            serving layer (internal/serve) additionally runs its full
#            suite under -race — it is the concurrency surface of the repo
#            — and the snapshot decoder fuzzes for 30s (FuzzSnapshotLoad):
#            hostile bytes must yield typed errors, never a panic or OOM;
#            the cross-engine fuzzer (FuzzEngineEquivalence) drives the
#            core engine, the lowdeg engine and the naive oracle through
#            the shared conformance checks on random bounded-degree
#            graphs for another 30s
#   tier 3 — performance guards:
#            (a) metrics-overhead guard: NextGeq with metrics disabled must
#                not be slower than with metrics enabled (the nil-sink fast
#                path of internal/obs; see README "Observability")
#            (b) cold-resume guard: a cold /v1/enumerate page after cache
#                eviction stays within a constant factor of a warm page —
#                cursor resume really is O(1) (see README "Serving")
#            (c) allocation guards (LINT_GUARD=1): Iterator.Next and
#                Engine.Test must report 0 allocs/op in steady state on
#                the E15 benchmark graph — the dynamic twin of the
#                fodlint hotpath analyzer
#            (d) snapshot guards (SNAP_GUARD=1): loading the E15 index
#                from a snapshot must be ≥10× faster than rebuilding it,
#                and the restored index must keep the zero-alloc
#                enumeration hot path (see README "Snapshots")
#            (e) trace guards (TRACE_GUARD=1): a server with tracing
#                disabled serves pages no slower than a traced one (the
#                one-branch disabled path), and Iterator.Next/Index.Test
#                stay at 0 allocs/op with a live request trace — spans
#                wrap pages and phases, never answers (README "Tracing")
#            (f) mutation guards (MUT_GUARD=1): a single-edge ApplyEdits
#                on the E16 grid must beat rebuilding the index by ≥10×
#                (the §3 n^ε update regime), and the mutated index must
#                keep the zero-alloc Iterator.Next/Index.Test hot paths
#                (see README "Mutations")
#            (g) lowdeg guards (LOWDEG_GUARD=1): on the degree-bounded
#                E17 graph the lowdeg build must be ≥5× cheaper than the
#                core build, and the lowdeg Iterator.Next / Test /
#                NextLast hot paths must report 0 allocs/op (see README
#                "Engine modes")
#            (h) self-lint guards (LINT2_GUARD=1): all seven fodlint
#                analyzers must come back clean over the whole module
#                (internal/lint included) modulo the reviewed baseline,
#                and the static //fod:hotpath closure must contain every
#                function the AllocsPerRun guards pin at 0 allocs/op —
#                the static and dynamic delay-bound checks must agree
#
#   scripts/verify.sh          # all tiers
#   scripts/verify.sh 1        # tier 1 only
#   scripts/verify.sh 2        # tier 2 only
#   scripts/verify.sh 3        # tier 3 only
set -euo pipefail
cd "$(dirname "$0")/.."

tier="${1:-all}"

if [[ "$tier" == "1" || "$tier" == "all" ]]; then
    echo "== tier 1: go build ./... && go test ./... =="
    go build ./...
    go test ./...
fi

if [[ "$tier" == "2" || "$tier" == "all" ]]; then
    echo "== tier 2: go vet ./... (+ explicit -copylocks -loopclosure) =="
    go vet ./...
    go vet -copylocks -loopclosure ./...
    echo "== tier 2: fodlint (7 whole-program analyzers, all packages, -json) =="
    go run ./cmd/fodlint -json ./... > /dev/null
    go run ./cmd/fodlint ./...
    echo "== tier 2: go test -race -short ./... =="
    go test -race -short ./...
    echo "== tier 2: serving layer full suite under -race =="
    go test -race -count=1 ./internal/serve/
    echo "== tier 2: trace ring + tail sampling under -race =="
    go test -race -count=1 -run 'TestRing|TestTailSampling|TestTraceSpanTree' ./internal/obs/
    echo "== tier 2: snapshot decoder fuzz (30s) =="
    go test -run FuzzSnapshotLoad -fuzz FuzzSnapshotLoad -fuzztime 30s ./internal/snap/
    echo "== tier 2: mutation-vs-rebuild fuzz (30s) =="
    go test -run FuzzMutateVsRebuild -fuzz FuzzMutateVsRebuild -fuzztime 30s ./internal/core/
    echo "== tier 2: cross-engine equivalence fuzz (30s) =="
    go test -run FuzzEngineEquivalence -fuzz FuzzEngineEquivalence -fuzztime 30s ./internal/lowdeg/
fi

if [[ "$tier" == "3" || "$tier" == "all" ]]; then
    echo "== tier 3: metrics-overhead guard (OBS_GUARD=1) =="
    OBS_GUARD=1 go test -run TestMetricsOverheadGuard -count=1 -v ./internal/core/
    echo "== tier 3: cold-resume guard (SERVE_GUARD=1) =="
    SERVE_GUARD=1 go test -run TestColdResumeGuard -count=1 -v ./internal/serve/
    echo "== tier 3: allocation guards (LINT_GUARD=1) =="
    LINT_GUARD=1 go test -run ZeroAllocs -count=1 -v ./internal/core/
    echo "== tier 3: snapshot guards (SNAP_GUARD=1) =="
    SNAP_GUARD=1 go test -run 'TestSnapshotLoad' -count=1 -v ./internal/snap/
    echo "== tier 3: trace guards (TRACE_GUARD=1) =="
    TRACE_GUARD=1 go test -run 'TestTraced|TestTraceDisabledOverheadGuard' -count=1 -v ./internal/serve/
    echo "== tier 3: mutation guards (MUT_GUARD=1) =="
    MUT_GUARD=1 go test -run 'TestMutateSpeedGuard|TestMutateZeroAllocsGuard' -count=1 -v .
    echo "== tier 3: lowdeg guards (LOWDEG_GUARD=1) =="
    LOWDEG_GUARD=1 go test -run 'TestLowdeg' -count=1 -v ./internal/lowdeg/
    echo "== tier 3: self-lint + hot-closure guards (LINT2_GUARD=1) =="
    LINT2_GUARD=1 go test -run 'TestSelfLintClean|TestHotClosureMatchesAllocGuards' -count=1 -v ./internal/lint/
fi

echo "verify: OK (tier $tier)"
