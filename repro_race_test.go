package repro_test

import (
	"sync"
	"testing"

	"repro"
)

// TestQueryCompileConcurrent is the regression test for the Query.compile
// data race: one *Query shared by many concurrent BuildIndex calls must
// compile exactly once and yield identical indexes. Run under `go test
// -race` (tier 2) the old lazy unsynchronized write to q.compiled is a
// reported race; with the sync.Once guard it is clean.
func TestQueryCompileConcurrent(t *testing.T) {
	g := repro.Generate("path", 300, repro.GenOptions{Colors: 1, Seed: 7})
	q := repro.MustParseQuery("dist(x,y) > 2 & C0(y)", "x", "y")

	const goroutines = 16
	counts := make([]int, goroutines)
	errs := make([]error, goroutines)
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func(i int) {
			defer done.Done()
			start.Wait() // line up so the first compile really races
			ix, err := repro.BuildIndex(g, q)
			if err != nil {
				errs[i] = err
				return
			}
			counts[i] = ix.Count()
		}(i)
	}
	start.Done()
	done.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: BuildIndex: %v", i, err)
		}
	}
	for i := 1; i < goroutines; i++ {
		if counts[i] != counts[0] {
			t.Fatalf("goroutine %d: count %d != %d", i, counts[i], counts[0])
		}
	}
	if counts[0] == 0 {
		t.Fatal("query has no solutions; test is vacuous")
	}

	// A query that fails to compile must fail identically for everyone.
	bad := repro.MustParseQuery("C0(x)", "x", "x")
	var wg sync.WaitGroup
	badErrs := make([]error, 8)
	for i := range badErrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, badErrs[i] = repro.BuildIndex(g, bad)
		}(i)
	}
	wg.Wait()
	for i, err := range badErrs {
		if err == nil {
			t.Fatalf("goroutine %d: duplicate-variable query compiled", i)
		}
	}
}
