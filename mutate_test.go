package repro

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

func collectAll(ix *Index) [][]int {
	var out [][]int
	ix.Enumerate(func(sol []int) bool {
		out = append(out, append([]int(nil), sol...))
		return true
	})
	return out
}

// TestBuildUnifiedEntry: Build with functional options matches the
// deprecated wrappers exactly.
func TestBuildUnifiedEntry(t *testing.T) {
	g := Generate("grid", 400, GenOptions{Colors: 1, Seed: 1})
	q := MustParseQuery("dist(x,y) > 2 & C0(y)", "x", "y")
	viaBuild, err := Build(context.Background(), g, q, WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	viaOld, err := BuildIndexOpt(g, q, IndexOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(collectAll(viaBuild), collectAll(viaOld)) {
		t.Fatal("Build and BuildIndexOpt enumerate differently")
	}
	if viaBuild.Version() != 0 {
		t.Fatalf("fresh build version = %d, want 0", viaBuild.Version())
	}
	reg := NewMetrics()
	instrumented, err := Build(context.Background(), g, q, WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	if instrumented.Metrics() != reg {
		t.Fatal("WithMetrics did not thread the registry")
	}
}

// TestIndexApplyEdits: the facade mutation derives a new version whose
// answers match a from-scratch build on the patched graph; the old version
// keeps its answers.
func TestIndexApplyEdits(t *testing.T) {
	g := Generate("grid", 400, GenOptions{Colors: 1, Seed: 2})
	q := MustParseQuery("dist(x,y) > 2 & C0(y)", "x", "y")
	ix, err := Build(context.Background(), g, q)
	if err != nil {
		t.Fatal(err)
	}
	before := collectAll(ix)
	edits := []Edit{RemoveEdge(0, 1), AddColor(7, 0), RemoveColor(3, 0)}
	next, err := ix.ApplyEdits(context.Background(), edits)
	if err != nil {
		t.Fatal(err)
	}
	if next.Version() != 1 {
		t.Fatalf("mutated version = %d, want 1", next.Version())
	}
	gNew, err := PatchGraph(g, edits)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := Build(context.Background(), gNew, q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(collectAll(next), collectAll(rebuilt)) {
		t.Fatal("mutated index enumerates differently from a rebuild")
	}
	if !reflect.DeepEqual(collectAll(ix), before) {
		t.Fatal("old version's answers changed")
	}
	if next.Graph().HasEdge(0, 1) || !next.Graph().HasColor(7, 0) {
		t.Fatal("Graph() does not reflect the edits")
	}
}

// TestLiveIndexVersioning: snapshot pinning, the retention window, and
// version_gone semantics.
func TestLiveIndexVersioning(t *testing.T) {
	g := Generate("grid", 225, GenOptions{Colors: 1, Seed: 3})
	q := MustParseQuery("dist(x,y) > 2 & C0(y)", "x", "y")
	ix, err := Build(context.Background(), g, q)
	if err != nil {
		t.Fatal(err)
	}
	li := NewLiveIndex(ix, 2)
	pinned := li.Snapshot()
	pinnedAnswers := collectAll(pinned)

	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 4; i++ {
		var edits []Edit
		u, v := rng.Intn(g.N()), rng.Intn(g.N())
		if u != v {
			if li.Snapshot().Graph().HasEdge(u, v) {
				edits = append(edits, RemoveEdge(u, v))
			} else {
				edits = append(edits, AddEdge(u, v))
			}
		}
		edits = append(edits, AddColor(rng.Intn(g.N()), 0))
		if _, err := li.Mutate(context.Background(), edits); err != nil {
			t.Fatal(err)
		}
	}
	if got := li.Version(); got < 3 {
		t.Fatalf("head version = %d after 4 mutations", got)
	}
	// The pinned snapshot still answers identically even though its
	// version may have been GC'd from the LiveIndex.
	if !reflect.DeepEqual(collectAll(pinned), pinnedAnswers) {
		t.Fatal("pinned snapshot's answers changed under mutations")
	}
	// Version 0 fell out of a retain=2 window after ≥3 effective bumps.
	if _, ok := li.At(0); ok && li.Version() >= 3 {
		t.Fatal("version 0 should have been garbage-collected")
	}
	if _, ok := li.At(li.Version()); !ok {
		t.Fatal("head version must be addressable")
	}
	if _, ok := li.At(li.Version() + 5); ok {
		t.Fatal("future versions must not resolve")
	}
	retained := li.Retained()
	if len(retained) > 3 { // retain=2 past + head
		t.Fatalf("retention window leaked: %v", retained)
	}
}

// TestLiveIndexConcurrentReaders: readers pinned across writer version
// bumps, under -race.
func TestLiveIndexConcurrentReaders(t *testing.T) {
	g := Generate("grid", 225, GenOptions{Colors: 1, Seed: 5})
	q := MustParseQuery("dist(x,y) > 2 & C0(y)", "x", "y")
	ix, err := Build(context.Background(), g, q)
	if err != nil {
		t.Fatal(err)
	}
	li := NewLiveIndex(ix, 0)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			snap := li.Snapshot()
			want := collectAll(snap)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Iterate the pinned snapshot; answers must never move.
				it := snap.Iterator()
				count := 0
				for _, ok := it.Next(); ok && count < 50; _, ok = it.Next() {
					count++
				}
				a := []int{rng.Intn(225), rng.Intn(225)}
				snap.Test(a)
				if i%10 == 9 {
					if !reflect.DeepEqual(collectAll(snap), want) {
						panic("pinned snapshot drifted")
					}
					// Re-pin to the current head now and then.
					snap = li.Snapshot()
					want = collectAll(snap)
				}
			}
		}(int64(w))
	}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 6; i++ {
		u, v := rng.Intn(g.N()), rng.Intn(g.N())
		if u == v {
			continue
		}
		var e Edit
		if li.Snapshot().Graph().HasEdge(u, v) {
			e = RemoveEdge(u, v)
		} else {
			e = AddEdge(u, v)
		}
		if _, err := li.Mutate(context.Background(), []Edit{e}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
