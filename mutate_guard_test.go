package repro

import (
	"context"
	"os"
	"runtime"
	"testing"
	"time"
)

// The mutation guards run in verify.sh tier 3 under MUT_GUARD=1, next to
// the snapshot and allocation guards they extend: a single-edge
// ApplyEdits must beat rebuilding the index by at least 10× on the
// fodbench E15/E16 grid configuration (the n^ε update regime of the
// paper's §3 against the n^{1+ε} rebuild), and the mutated snapshot must
// keep the //fod:hotpath contract — zero allocations per enumeration
// step and per membership test.

func mutGuardGate(t *testing.T) {
	t.Helper()
	if os.Getenv("MUT_GUARD") == "" {
		t.Skip("set MUT_GUARD=1 to run the mutation performance guards")
	}
}

// buildMutGuard reproduces the E16 setup: Example 2 of the paper on an
// E15-sized grid, plus the edge the guard toggles — an edge of the
// densest vertex, so the edit touches a nontrivial neighborhood.
func buildMutGuard(t testing.TB) (*Index, *Query, int, int, time.Duration) {
	t.Helper()
	g := Generate("grid", 4000, GenOptions{Colors: 2, Seed: 16})
	q := MustParseQuery("dist(x,y) > 2 & C0(y)", "x", "y")
	start := time.Now()
	ix, err := Build(context.Background(), g, q)
	if err != nil {
		t.Fatal(err)
	}
	u := 0
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) > g.Degree(u) {
			u = v
		}
	}
	return ix, q, u, int(g.Neighbors(u)[0]), time.Since(start)
}

// TestMutateSpeedGuard pins the point of the mutation layer: a one-edge
// edit recomputes only what the edge can reach, so it must be at least
// an order of magnitude faster than the rebuild it replaces.
func TestMutateSpeedGuard(t *testing.T) {
	mutGuardGate(t)
	ctx := context.Background()
	ix, q, u, w, buildTime := buildMutGuard(t)

	// Best of five alternating remove/add edits, so a stray scheduler
	// hiccup on a loaded machine does not fail the guard; every batch is
	// effective (the edge genuinely toggles). The rebuild is measured
	// once, cold, as a server would pay it.
	runtime.GC()
	updateTime := time.Duration(1<<63 - 1)
	for i := 0; i < 5; i++ {
		edit := RemoveEdge(u, w)
		if i%2 == 1 {
			edit = AddEdge(u, w)
		}
		start := time.Now()
		next, err := ix.ApplyEdits(ctx, []Edit{edit})
		if err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < updateTime {
			updateTime = d
		}
		if next == ix {
			t.Fatal("toggle edit reported as a no-op")
		}
		ix = next
	}
	if n := ix.Stats().MutRebuilds; n != 0 {
		t.Errorf("%d of 5 single-edge edits fell back to a full rebuild", n)
	}

	start := time.Now()
	if _, err := Build(ctx, ix.Graph(), q); err != nil {
		t.Fatal(err)
	}
	rebuildTime := time.Since(start)
	t.Logf("E16 grid: build %v, single-edge update %v, rebuild %v (%.1fx)",
		buildTime, updateTime, rebuildTime, float64(rebuildTime)/float64(updateTime))
	if 10*updateTime > rebuildTime {
		t.Errorf("single-edge update %v is not ≥10x faster than rebuild %v", updateTime, rebuildTime)
	}
}

// TestMutateZeroAllocsGuard pins the mutated snapshot to the same
// zero-allocation hot paths as a freshly built index — patched layouts
// and the skip-delta overlay must not reintroduce per-answer
// allocations.
func TestMutateZeroAllocsGuard(t *testing.T) {
	mutGuardGate(t)
	built, _, u, w, _ := buildMutGuard(t)
	ix, err := built.ApplyEdits(context.Background(), []Edit{RemoveEdge(u, w)})
	if err != nil {
		t.Fatal(err)
	}
	it := ix.Iterator()
	if !it.HasNext() {
		t.Fatal("mutated E16 index produced no solutions")
	}
	zero := make([]int, ix.Arity())
	allocs := testing.AllocsPerRun(2000, func() {
		if _, ok := it.Next(); !ok {
			it.Seek(zero)
		}
	})
	if allocs != 0 {
		t.Errorf("mutated Iterator.Next = %.2f allocs/op, want 0 (//fod:hotpath contract)", allocs)
	}

	probe := make([]int, ix.Arity())
	allocs = testing.AllocsPerRun(2000, func() {
		ix.Test(probe)
	})
	if allocs != 0 {
		t.Errorf("mutated Index.Test = %.2f allocs/op, want 0 (//fod:hotpath contract)", allocs)
	}
}
